package tcp

import (
	"net"
	"sync/atomic"
	"testing"
	"time"

	"skueue/internal/transport"
	"skueue/internal/wire"
)

// echoNode counts timeouts and bounces every "ping" back as "pong".
type echoNode struct {
	timeouts atomic.Int64
	got      atomic.Int64
}

func (e *echoNode) OnInit(ctx *transport.Context) {}
func (e *echoNode) OnTimeout(ctx *transport.Context) {
	e.timeouts.Add(1)
}
func (e *echoNode) OnMessage(ctx *transport.Context, from transport.NodeID, payload any) {
	e.got.Add(1)
	if payload == "ping" {
		ctx.Send(from, "pong")
	}
}

// serve runs a minimal accept loop for a peer (the server package owns the
// real one).
func serve(t *testing.T, lis net.Listener, p *Peer) {
	t.Helper()
	go func() {
		for {
			nc, err := lis.Accept()
			if err != nil {
				return
			}
			go func() {
				conn := wire.NewConn(nc)
				v, err := conn.Read()
				if err != nil {
					conn.Close()
					return
				}
				hello, ok := v.(wire.Hello)
				if !ok || hello.Kind != "peer" {
					conn.Close()
					return
				}
				p.AcceptPeer(conn, hello)
			}()
		}
	}()
}

func TestPeersExchangeMessages(t *testing.T) {
	lis0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lis1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis0.Close()
	defer lis1.Close()

	p0 := New(Options{Index: 0, Addr: lis0.Addr().String(), Pids: []int32{0}, Seed: 1, Tick: time.Millisecond})
	p1 := New(Options{Index: 1, Addr: lis1.Addr().String(), Pids: []int32{1}, Seed: 1, Tick: time.Millisecond})
	defer p0.Close()
	defer p1.Close()

	// Each member knows the other from the start (bootstrap book).
	p0.SetBook([]wire.MemberInfo{p1.Me()})
	p1.SetBook([]wire.MemberInfo{p0.Me()})

	n0, n1 := &echoNode{}, &echoNode{}
	p0.Register(0, n0) // pid 0, kind L
	p1.Register(3, n1) // pid 1, kind L
	serve(t, lis0, p0)
	serve(t, lis1, p1)
	p0.Start()
	p1.Start()

	// Inject pings from node 0 to node 3 across the wire.
	const pings = 50
	for i := 0; i < pings; i++ {
		p0.Do(func() { p0.Send(0, 3, "ping") })
	}
	deadline := time.After(5 * time.Second)
	for n0.got.Load() < pings {
		select {
		case <-deadline:
			t.Fatalf("only %d/%d pongs arrived (peer got %d pings)", n0.got.Load(), pings, n1.got.Load())
		case <-time.After(5 * time.Millisecond):
		}
	}
	if n1.got.Load() != pings {
		t.Fatalf("receiver saw %d pings, want %d", n1.got.Load(), pings)
	}
	if n0.timeouts.Load() == 0 || n1.timeouts.Load() == 0 {
		t.Fatalf("TIMEOUT never fired: %d / %d", n0.timeouts.Load(), n1.timeouts.Load())
	}
}

func TestParkedFramesFlushOnBookUpdate(t *testing.T) {
	lis0, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	lis1, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis0.Close()
	defer lis1.Close()

	p0 := New(Options{Index: 0, Addr: lis0.Addr().String(), Pids: []int32{0}, Seed: 1})
	p1 := New(Options{Index: 1, Addr: lis1.Addr().String(), Pids: []int32{1}, Seed: 1})
	defer p0.Close()
	defer p1.Close()
	n0, n1 := &echoNode{}, &echoNode{}
	p0.Register(0, n0)
	p1.Register(3, n1)
	serve(t, lis0, p0)
	serve(t, lis1, p1)
	p0.Start()
	p1.Start()

	// p0 does not know who hosts pid 1 yet: the frame must park, then fly
	// once the book names member 1.
	p0.Do(func() { p0.Send(0, 3, "ping") })
	time.Sleep(50 * time.Millisecond)
	if n1.got.Load() != 0 {
		t.Fatalf("frame delivered before the book knew the pid")
	}
	p0.AddMember(p1.Me())
	deadline := time.After(5 * time.Second)
	for n1.got.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("parked frame never flushed after book update")
		case <-time.After(5 * time.Millisecond):
		}
	}
}
