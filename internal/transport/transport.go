// Package transport defines the message-delivery abstraction the Skueue
// protocol runs on: node addresses, the handler interface a protocol node
// implements, the Context through which a handler talks back to its
// surroundings, and the Network interface every backend provides.
//
// Two backends exist:
//
//   - internal/sim, the deterministic discrete-event simulator: all nodes
//     live in one single-threaded engine, every run is exactly
//     reproducible from its seed, and simulated time advances explicitly.
//     This is the default used by the client layer, the tests and the
//     experiment harness.
//   - internal/transport/tcp, the networked backend: each operating-system
//     process hosts a subset of the nodes, messages between processes
//     travel as length-prefixed gob frames over TCP (see internal/wire),
//     and TIMEOUT is driven by a wall-clock ticker. Per-link sequence
//     numbers, cumulative acknowledgments and reconnect replay make
//     delivery exactly-once across connection resets, realizing the
//     reliable-channel contract on an unreliable network.
//
// The protocol core (internal/core) is written against this package only,
// so the same node code runs unchanged under both backends. The split
// mirrors the paper's model separation: the protocol is specified against
// an abstract reliable message channel (§I-B), and the channel's
// realization — synchronous rounds, bounded asynchrony, or a real network
// — is a property of the run, not of the algorithm.
package transport

import "skueue/internal/xrand"

// NodeID addresses one virtual node. Under the simulator IDs are dense
// spawn-order indices; under the TCP backend they encode the hosting
// process (see internal/transport/tcp), so an ID is routable from any
// member of the cluster.
type NodeID int32

// None is the nil NodeID.
const None NodeID = -1

// Handler is the behaviour of a protocol node. A node is the paper's
// "process executing actions": OnMessage corresponds to processing a
// remote action call from the channel, OnTimeout to the periodic TIMEOUT
// action.
type Handler interface {
	// OnInit runs once when the node is spawned.
	OnInit(ctx *Context)
	// OnMessage processes one delivered message.
	OnMessage(ctx *Context, from NodeID, payload any)
	// OnTimeout runs once per round (synchronous simulation) or
	// periodically (asynchronous simulation, TCP ticker).
	OnTimeout(ctx *Context)
}

// Network is what a backend provides to the nodes it hosts: message
// delivery, node lifecycle, and the ambient clock and randomness. Sends
// are asynchronous and reliable — a sent message is eventually delivered
// exactly once, but with arbitrary delay and in arbitrary order relative
// to other messages (the paper's channel assumption). The simulator gets
// this for free; the TCP backend earns it with per-link acknowledgment
// sequencing and retransmission, and its per-link FIFO ordering is a
// harmless special case. Around a fail-stop member restart the TCP
// backend can additionally deliver a small number of benign duplicates of
// the restarted member's pre-crash messages, which the protocol layer
// detects and drops (see internal/core).
type Network interface {
	// Send delivers payload to the node to, attributed to from. It may be
	// called from within a handler callback or from outside (injection);
	// backends may restrict out-of-callback calls to a specific goroutine
	// (the TCP backend requires its runner — see tcp.Peer.Do).
	//
	//skueue:wire-payload
	Send(from, to NodeID, payload any)
	// Spawn adds a node mid-run and returns its freshly allocated address
	// (used for LEAVE replacements, §IV-B).
	Spawn(h Handler) NodeID
	// Now returns the current time: the round (synchronous sim), the
	// virtual time (asynchronous sim), or the tick count (TCP).
	Now() int64
	// Rand returns the backend's deterministic RNG. Under TCP it is only
	// as deterministic as the schedule feeding it.
	Rand() *xrand.RNG
	// StopTimeouts disables further TIMEOUT callbacks for a node, leaving
	// it able to receive messages (departed nodes that only forward).
	StopTimeouts(id NodeID)
	// Deactivate removes a node entirely; delivering to it afterwards is a
	// protocol error.
	Deactivate(id NodeID)
}

// Registry is implemented by backends that let a host register nodes at
// caller-chosen addresses. The TCP backend uses it for bootstrap wiring:
// the initial ring is computed deterministically from the shared seed, so
// every member must place the virtual nodes of process pid at the globally
// agreed IDs (see internal/core.NodeIDForProcess).
type Registry interface {
	Register(id NodeID, h Handler)
}

// Context is the interface a handler uses to interact with its backend
// during a callback. A Context is bound to one node; backends may reuse
// the same Context for every callback of that node, so handlers should not
// retain it past the callback (though under the single-threaded simulator
// the pointer stays valid, and retaining it for convenience is tolerated).
type Context struct {
	net  Network
	self NodeID
}

// NewContext binds a Context to a node on a backend. It is exported for
// backend implementations; protocol code only ever receives Contexts.
func NewContext(net Network, self NodeID) Context {
	return Context{net: net, self: self}
}

// Self returns the node the current callback belongs to.
func (c *Context) Self() NodeID { return c.self }

// Now returns the current backend time.
func (c *Context) Now() int64 { return c.net.Now() }

// Send enqueues a message to another (or the same) node.
//
//skueue:wire-payload
func (c *Context) Send(to NodeID, payload any) { c.net.Send(c.self, to, payload) }

// Spawn creates a new node mid-run (used for LEAVE replacements).
func (c *Context) Spawn(h Handler) NodeID { return c.net.Spawn(h) }

// Rand returns the backend RNG.
func (c *Context) Rand() *xrand.RNG { return c.net.Rand() }

// StopTimeouts disables further TIMEOUT callbacks for a node.
func (c *Context) StopTimeouts(id NodeID) { c.net.StopTimeouts(id) }

// Deactivate removes a node entirely; delivering or sending to it
// afterwards is a protocol error. The paper's leave protocol guarantees no
// such message exists once the drain completes.
func (c *Context) Deactivate(id NodeID) { c.net.Deactivate(id) }

// Network returns the backend hosting this node (engine-level queries in
// tests and metrics).
func (c *Context) Network() Network { return c.net }
