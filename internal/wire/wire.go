// Package wire is the codec of the networked transport: length-prefixed
// binary frames whose bodies are encoding/gob streams, the message
// envelope exchanged between cluster members, and the small
// request/response protocol spoken by remote clients.
//
// # Framing
//
// Every frame on a connection is
//
//	[4-byte big-endian body length][body]
//
// with the body produced by a per-connection gob encoder. gob streams are
// stateful — type descriptors are transmitted once per stream — so the
// encoder and decoder persist for the lifetime of the connection while the
// explicit length prefix provides cheap message delimiting, a hard size
// guard (MaxFrame) against corrupt or hostile peers, and the ability to
// skip or log frames without decoding them.
//
// # Envelopes and link sequencing
//
// Member-to-member connections carry a Hello handshake followed by
// Envelope frames: (from, to, payload) triples whose payloads are the
// protocol messages of internal/core, registered with Register by
// core.RegisterWireTypes. Client connections carry a Hello followed by the
// Cli* request/response types below.
//
// Envelope and BookUpdate frames additionally carry a per-link sequence
// number (Seq) and a piggybacked cumulative acknowledgment (Ack) for the
// reverse direction of the member pair; the standalone Ack frame covers
// idle links. Together with the last-acknowledged sequence exchanged in
// HelloAck and the sender boot epoch in Hello, they give the TCP backend
// exactly-once delivery across arbitrary connection resets (see
// internal/transport/tcp, "Delivery guarantees").
//
// # Values
//
// Remote clients transmit user values as opaque byte blobs produced by
// EncodeValue. Values must be gob-encodable; concrete types stored inside
// interface values must be registered — common scalar and composite types
// are pre-registered, applications add their own with RegisterValue.
package wire

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"skueue/internal/seqcheck"
	"skueue/internal/transport"
)

// ErrEncode marks a Write failure that happened before any byte reached
// the socket (gob encoding error, frame over MaxFrame). Such failures are
// deterministic: retrying the same value on a fresh connection fails
// identically, so link layers must drop the frame instead of redialing.
var ErrEncode = errors.New("wire: message not encodable")

// MaxFrame is the largest frame body accepted from a connection. It
// comfortably exceeds any protocol message (the largest are leave handoffs
// carrying DHT fragments) while bounding memory under corruption.
const MaxFrame = 64 << 20

// Register makes a concrete type transmittable inside the `any`-typed
// fields of envelopes and protocol messages (gob interface encoding).
// It is the package's single registration point so that all encoders and
// decoders agree; internal/core registers its message set through it.
//
//skueue:wire-register
func Register(v any) { gob.Register(v) }

func init() {
	// Common value types for remote client payloads.
	Register("")
	Register(0)
	Register(int64(0))
	Register(uint64(0))
	Register(float64(0))
	Register(false)
	Register([]byte(nil))
	Register([]any(nil))
	Register(map[string]any(nil))
}

// ---- Member-to-member protocol ----

// MemberInfo describes one cluster member for the address book: its index,
// its listen address, and the process IDs it hosts. Node addresses resolve
// to members through the pid encoding (see internal/transport/tcp).
type MemberInfo struct {
	Index int32
	Addr  string
	Pids  []int32
}

// Hello is the first frame of every connection, in both directions on
// peer links (each side introduces itself) and client-to-server.
type Hello struct {
	// Kind is "peer" or "client".
	Kind string
	// Me describes the dialing member (peer connections only).
	Me MemberInfo
	// Book is the sender's current address book (peer connections only);
	// the receiver merges it.
	Book []MemberInfo
	// Boot is the dialing member's boot epoch (peer connections only). A
	// receiver that knew the member under a different epoch resets its
	// per-sender delivery sequence: the sender restarted and numbers its
	// link frames from zero again.
	Boot int64
	// Session is the client-chosen durable session ID (client
	// connections). Empty selects an ephemeral connection: pending
	// operations die with the connection. Non-empty, the member retains
	// journaled outcomes addressable by (session, CliEnqueue/CliDequeue
	// .Seq) until the client acknowledges their delivery.
	Session string
	// SessionResume marks a session reconnect: the answering member must
	// already hold the session. Without it an unknown session is created
	// fresh (first contact); with it the member answers
	// HelloAck.SessionResumed false instead, so a client redialing after
	// a failover can never silently start an empty session at a member
	// that does not own its state.
	SessionResume bool
	// SessionAck is the client's cumulative delivered-outcome cursor:
	// every session operation with Seq <= SessionAck has had its outcome
	// delivered, so the member may prune outcomes it retains at or below
	// it. See also CliSessionAck.
	SessionAck uint64
}

// HelloAck answers a Hello: the receiver's address book and, for clients,
// the cluster parameters a remote client needs.
type HelloAck struct {
	Book []MemberInfo
	// Mode is "queue", "stack" or "heap" (client connections).
	Mode string
	// HeapLevels is the number of priority levels (heap mode only): the
	// client validates EnqueuePri levels locally against it.
	HeapLevels int32
	// Index is the answering member's index.
	Index int32
	// AckSeq is the receiver's cumulative acknowledgment for the dialing
	// member's link (peer connections): every sequenced frame with
	// Seq <= AckSeq is durably delivered and must not be retransmitted; the
	// dialer replays everything newer.
	AckSeq uint64
	// SessionResumed reports that the answering member owns the presented
	// session and re-attached it (client connections with
	// Hello.SessionResume). False on a resume means the member does not
	// hold the session — the client should locate the owner through Book
	// instead; retained outcomes follow over this connection when true.
	SessionResumed bool
	// SessionSeq is the session's operation-sequence high-water mark:
	// the largest per-session Seq the member has accepted, acknowledged
	// or retained. A client that re-attaches without its own in-memory
	// counter (a fresh process adopting a durable session) must continue
	// numbering above it — sequences at or below are dead history the
	// member silently deduplicates, so reusing them loses the op.
	SessionSeq uint64
}

// Envelope is one protocol message in flight between members.
type Envelope struct {
	From, To transport.NodeID
	Payload  any
	// Seq is the per-link sequence number, assigned by the sending link in
	// transmission order (1, 2, ...). Zero means unsequenced (local
	// delivery, which never crosses a connection).
	Seq uint64
	// Ack piggybacks the sender's cumulative acknowledgment for the
	// reverse direction of this member pair.
	Ack uint64
}

// BookUpdate pushes an updated address book over an established peer link
// (sent by the seed when a member joins). It shares the link's sequence
// space with envelopes, so a book update lost to a connection reset is
// retransmitted like any protocol message.
type BookUpdate struct {
	Book []MemberInfo
	Seq  uint64
	Ack  uint64
}

// Ack is a standalone cumulative acknowledgment, written on the reverse
// path of a peer connection when no outbound traffic is available to
// piggyback on: every sequenced frame with Seq <= Seq is delivered.
type Ack struct {
	Seq uint64
}

// ReplayFence marks the end of a peer link's reconnect replay: every
// frame the sender held unacknowledged when this connection was
// established precedes it on the stream. It is unsequenced (a fresh one
// is written on every reconnect) and carries the sender's boot epoch so
// a fence from a stale connection cannot satisfy the receiver. A member
// restarting from a fail-stop crash uses the fences to learn when
// pre-crash traffic has finished arriving and fresh client operations
// can safely be injected again (see the replay gate in internal/server:
// a new operation joining a wave whose serve was already computed by the
// crashed incarnation would diverge the replay and wedge the member).
type ReplayFence struct {
	Boot int64
}

// ---- Client protocol ----

// CliEnqueue submits an ENQUEUE (PUSH) of an encoded value. Seq is the
// client's correlation number — on a session connection, the per-session
// operation sequence the member dedupes re-presented operations by —
// echoed in the CliDone. Ack piggybacks the session's delivered-outcome
// cursor (see Hello.SessionAck); zero-valued and ignored on ephemeral
// connections.
type CliEnqueue struct {
	Seq   uint64
	Value []byte
	Ack   uint64
	// Pri is the priority level of an EnqueuePri (heap clusters); PriOp
	// marks the operation as a priority-API submission. The member rejects
	// a PriOp against a queue/stack cluster — and a plain enqueue against a
	// heap cluster — with CliDone.WrongMode, so a client talking to a
	// cluster of the wrong flavour fails loudly instead of silently
	// reinterpreting priorities.
	Pri   int32
	PriOp bool
}

// CliDequeue submits a DEQUEUE (POP). Seq and Ack as in CliEnqueue; PriOp
// marks a DequeueMin (heap clusters), policed like CliEnqueue.PriOp.
type CliDequeue struct {
	Seq   uint64
	Ack   uint64
	PriOp bool
}

// CliSessionAck advances a durable session's delivered-outcome cursor
// when no operation is available to piggyback it on: every session
// operation with Seq <= Ack had its outcome delivered, and the member
// prunes the outcomes it retains at or below it. Cursors are cumulative;
// a regression is ignored.
type CliSessionAck struct {
	Ack uint64
}

// CliDone reports a completed client operation. It is the client-visible
// outcome frame: the fields below marked as result-bearing must never be
// released to a session before the covering journal record could sync
// (see internal/analysis/releaseorder).
//
//skueue:client-outcome
type CliDone struct {
	Seq uint64
	// ReqID is the operation's durable, member-tagged request identity
	// (zero for submission errors that never reached injection). Servers
	// with a state directory journal a completion under this identity
	// before releasing the CliDone, which is what makes the operation's
	// outcome exactly-once across a fail-stop restart of the member.
	ReqID uint64
	// Bottom marks a dequeue serialized against an empty structure (⊥).
	//
	//skueue:client-outcome
	Bottom bool
	// Value is the dequeued encoded value (dequeues only).
	//
	//skueue:client-outcome
	Value []byte
	// Rounds is the request latency in transport ticks.
	//
	//skueue:client-outcome
	Rounds int64
	// Rank is the operation's serialization rank (core value()), when the
	// completion path knows it: completions carry it, bare put-acks do not
	// (seqcheck.NoValue there). Session clients track it in their
	// per-session version vector to verify read-your-writes / monotonic
	// dequeues across failover.
	//
	//skueue:client-outcome
	Rank int64
	// Err carries a server-side submission error, empty on success.
	Err string
	// WrongMode marks a submission rejected because the operation's
	// flavour does not match the cluster's mode (a priority operation on a
	// queue/stack cluster, or a plain one on a heap cluster). The client
	// layer surfaces it as ErrWrongMode. The rejection is deterministic —
	// it depends only on the immutable cluster mode — so it needs no
	// journaled identity and is safe to re-derive on a session replay.
	WrongMode bool
	// Unreachable marks an operation abandoned because a cluster member
	// stayed unreachable past the server's give-up timeout (fail-stop
	// detection); the client layer surfaces it as ErrUnreachable with an
	// indeterminate future.
	Unreachable bool
}

// CliHistory asks a member for its local completion history; the caller
// merges the histories of all members before running the sequential-
// consistency checker (completions are recorded where they finish, which
// for enqueues is the member storing the element).
type CliHistory struct{}

// CliHistoryResp returns a member's local completion history.
type CliHistoryResp struct {
	Ops []seqcheck.Completion
}

// CliJoin asks the seed member to admit a new member into the cluster —
// or, with Rejoin set, to re-admit a member restarting from a snapshot.
type CliJoin struct {
	// Addr is the joining member's listen address.
	Addr string
	// Rejoin marks a fail-stop restart: the member already holds an index
	// and process IDs (restored from its snapshot) and only needs the seed
	// to re-broadcast its — possibly new — address.
	Rejoin bool
	// Index and Pids identify the restarting member (Rejoin only).
	Index int32
	Pids  []int32
}

// CliJoinResp carries the assignment the seed made for a joining member.
type CliJoinResp struct {
	// Index and Pid are the new member's member index and first process ID.
	Index int32
	Pid   int32
	// Seed, Mode, HeapLevels and UpdateThreshold mirror the cluster
	// configuration so the joiner derives identical labels and hashes.
	Seed            int64
	Mode            string
	HeapLevels      int32
	UpdateThreshold int
	// Book is the cluster's address book including the new member.
	Book []MemberInfo
	// Contact is the node the joiner routes its JOIN requests through.
	Contact transport.NodeID
	// Err reports a rejected join, empty on success.
	Err string
}

// ---- Connection ----

// Conn wraps a net.Conn with the framing and the persistent gob codec.
// Reads and writes are independently locked, so one reader goroutine and
// any number of writers may share it.
type Conn struct {
	c net.Conn

	//skueue:lock 80 io
	wmu sync.Mutex
	//skueue:guarded-by wmu
	wbuf bytes.Buffer
	//skueue:guarded-by wmu
	enc *gob.Encoder

	//skueue:lock 81 io
	rmu sync.Mutex
	//skueue:guarded-by rmu
	fr *frameReader
	//skueue:guarded-by rmu
	dec *gob.Decoder
}

// NewConn wraps an established network connection.
//
//skueue:owned-by caller -- the Conn is under construction and not yet shared with any goroutine
func NewConn(c net.Conn) *Conn {
	w := &Conn{c: c}
	w.enc = gob.NewEncoder(&w.wbuf)
	w.fr = &frameReader{r: c}
	w.dec = gob.NewDecoder(w.fr)
	return w
}

// Write encodes v into the next frame and sends it.
//
//skueue:wire-payload
//skueue:blocking -- synchronous network write; sessions and links call it from writer goroutines, never the runner
func (w *Conn) Write(v any) error {
	w.wmu.Lock()
	defer w.wmu.Unlock()
	w.wbuf.Reset()
	if err := w.enc.Encode(&v); err != nil {
		return fmt.Errorf("%w: %w", ErrEncode, err)
	}
	body := w.wbuf.Bytes()
	if len(body) > MaxFrame {
		return fmt.Errorf("%w: frame of %d bytes exceeds MaxFrame", ErrEncode, len(body))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(body)))
	if _, err := w.c.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.c.Write(body)
	return err
}

// Read decodes the next frame. It blocks until a frame arrives, the
// connection closes (io.EOF), or fails.
func (w *Conn) Read() (any, error) {
	w.rmu.Lock()
	defer w.rmu.Unlock()
	// Every Write produces one frame per message and caps it at MaxFrame,
	// so one Decode may consume at most MaxFrame bytes; the budget stops a
	// hostile peer from smuggling an oversized message as many compliant
	// frames.
	w.fr.budget = MaxFrame
	var v any
	if err := w.dec.Decode(&v); err != nil {
		return nil, err
	}
	return v, nil
}

// Close closes the underlying connection; blocked Reads return.
func (w *Conn) Close() error { return w.c.Close() }

// RemoteAddr exposes the peer address for logging.
func (w *Conn) RemoteAddr() net.Addr { return w.c.RemoteAddr() }

// frameReader feeds the gob decoder the concatenated frame bodies,
// enforcing the length prefix, MaxFrame per frame, and the per-message
// budget set by Conn.Read.
type frameReader struct {
	r      io.Reader
	left   int
	budget int
}

func (f *frameReader) Read(p []byte) (int, error) {
	if f.budget <= 0 {
		return 0, fmt.Errorf("wire: message exceeds MaxFrame (split across frames)")
	}
	for f.left == 0 {
		var hdr [4]byte
		if _, err := io.ReadFull(f.r, hdr[:]); err != nil {
			return 0, err
		}
		n := binary.BigEndian.Uint32(hdr[:])
		if n > MaxFrame {
			return 0, fmt.Errorf("wire: incoming frame of %d bytes exceeds MaxFrame", n)
		}
		f.left = int(n)
	}
	if len(p) > f.left {
		p = p[:f.left]
	}
	if len(p) > f.budget {
		p = p[:f.budget]
	}
	n, err := f.r.Read(p)
	f.left -= n
	f.budget -= n
	return n, err
}

// ---- Value codec ----

// RegisterValue registers a concrete user value type for transmission by
// remote clients; see EncodeValue.
//
//skueue:wire-register
func RegisterValue(v any) { gob.Register(v) }

// EncodeValue serializes a user value for transport. Each value is a
// self-contained gob stream, so blobs can be stored, forwarded and decoded
// independently of any connection.
func EncodeValue(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, fmt.Errorf("wire: value %T is not transportable: %w", v, err)
	}
	return buf.Bytes(), nil
}

// DecodeValue reverses EncodeValue. A nil blob decodes to nil.
func DecodeValue(b []byte) (any, error) {
	if len(b) == 0 {
		return nil, nil
	}
	var v any
	if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v); err != nil {
		return nil, fmt.Errorf("wire: decode value: %w", err)
	}
	return v, nil
}

func init() {
	// Handshake and protocol frames themselves travel as `any` frames.
	Register(Hello{})
	Register(HelloAck{})
	Register(Envelope{})
	Register(BookUpdate{})
	Register(Ack{})
	Register(ReplayFence{})
	Register(CliEnqueue{})
	Register(CliDequeue{})
	Register(CliSessionAck{})
	Register(CliDone{})
	Register(CliHistory{})
	Register(CliHistoryResp{})
	Register(CliJoin{})
	Register(CliJoinResp{})
}
