package wire

import (
	"net"
	"reflect"
	"testing"
)

func TestValueCodec(t *testing.T) {
	for _, v := range []any{nil, "job-1", 42, int64(-7), 3.5, true, []byte{1, 2}, []any{"a", 1}, map[string]any{"k": "v"}} {
		b, err := EncodeValue(v)
		if err != nil {
			t.Fatalf("EncodeValue(%v): %v", v, err)
		}
		got, err := DecodeValue(b)
		if err != nil {
			t.Fatalf("DecodeValue(%v): %v", v, err)
		}
		if !reflect.DeepEqual(got, v) {
			t.Fatalf("round trip changed %#v into %#v", v, got)
		}
	}
}

func TestConnFraming(t *testing.T) {
	a, b := net.Pipe()
	ca, cb := NewConn(a), NewConn(b)
	defer ca.Close()
	defer cb.Close()

	msgs := []any{
		Hello{Kind: "peer", Me: MemberInfo{Index: 1, Addr: "x:1", Pids: []int32{1}}},
		HelloAck{Book: []MemberInfo{{Index: 0, Addr: "y:2", Pids: []int32{0}}}, Mode: "queue"},
		CliEnqueue{Seq: 9, Value: []byte("blob")},
		CliDone{Seq: 9, Bottom: true, Rounds: 17},
		BookUpdate{Book: []MemberInfo{{Index: 2, Addr: "z:3", Pids: []int32{5, 6}}}},
	}
	go func() {
		for _, m := range msgs {
			if err := ca.Write(m); err != nil {
				t.Errorf("write %T: %v", m, err)
				return
			}
		}
	}()
	for i, want := range msgs {
		got, err := cb.Read()
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("msg %d: got %+v want %+v", i, got, want)
		}
	}
}
