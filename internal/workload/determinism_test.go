package workload

import (
	"bytes"
	"fmt"
	"testing"
)

// opStream runs the spec against a fresh cluster and captures the exact
// request stream the generator issues, one op per line.
func opStream(t *testing.T, procs int, clusterSeed, genSeed int64, spec Spec, churn []ChurnEvent) []byte {
	t.Helper()
	cl := mkCluster(t, procs, clusterSeed)
	gen, err := New(cl, spec, genSeed)
	if err != nil {
		t.Fatal(err)
	}
	gen.Schedule(churn...)
	var buf bytes.Buffer
	gen.SetObserver(func(op Op) {
		fmt.Fprintf(&buf, "r%d c%d enq=%v\n", op.Round, op.Client, op.Enq)
	})
	if !gen.Run(50000) {
		t.Fatalf("spec %+v did not drain", spec)
	}
	return buf.Bytes()
}

// TestWorkloadDeterminism pins the generator's reproducibility contract:
// the same (cluster seed, generator seed, spec, churn) produces a
// byte-identical op stream on every run — the property every chaos
// scenario, BENCH point, and "same scenario, same result" claim in
// EXPERIMENTS.md rests on.
func TestWorkloadDeterminism(t *testing.T) {
	churny := []ChurnEvent{{Round: 10, Join: true, Proc: 0}, {Round: 20, Proc: 2}}
	cases := []struct {
		name  string
		procs int
		spec  Spec
		churn []ChurnEvent
	}{
		{"fixed-rate", 4, Spec{Rounds: 40, RequestsPerRound: 5, EnqRatio: 0.5}, nil},
		{"enq-heavy", 4, Spec{Rounds: 40, RequestsPerRound: 3, EnqRatio: 0.9}, nil},
		{"deq-only", 3, Spec{Rounds: 30, RequestsPerRound: 2, EnqRatio: 0}, nil},
		{"per-node", 6, Spec{Rounds: 40, PerNodeProb: 0.3, EnqRatio: 0.6}, nil},
		{"under-churn", 5, Spec{Rounds: 40, RequestsPerRound: 4, EnqRatio: 0.5}, churny},
		{"large", 16, Spec{Rounds: 25, RequestsPerRound: 8, EnqRatio: 0.7}, nil},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			a := opStream(t, tc.procs, 11, 7, tc.spec, tc.churn)
			b := opStream(t, tc.procs, 11, 7, tc.spec, tc.churn)
			if len(a) == 0 {
				t.Fatal("observer captured no ops")
			}
			if !bytes.Equal(a, b) {
				t.Fatalf("op streams diverged between identical runs:\nfirst:\n%s\nsecond:\n%s", a, b)
			}
			// A different generator seed must change the stream (the
			// observer sees real randomness, not a constant pattern).
			c := opStream(t, tc.procs, 11, 8, tc.spec, tc.churn)
			if bytes.Equal(a, c) && tc.spec.EnqRatio > 0 && tc.spec.EnqRatio < 1 {
				t.Fatal("changing the generator seed did not change the op stream")
			}
		})
	}
}

// TestObserverSeesEveryIssue cross-checks the observer against the
// cluster's own issue counter.
func TestObserverSeesEveryIssue(t *testing.T) {
	cl := mkCluster(t, 4, 3)
	gen, err := New(cl, Spec{Rounds: 30, RequestsPerRound: 4, EnqRatio: 0.5}, 9)
	if err != nil {
		t.Fatal(err)
	}
	seen := 0
	lastRound := -1
	gen.SetObserver(func(op Op) {
		seen++
		if op.Round < lastRound {
			t.Fatalf("observer saw round %d after round %d", op.Round, lastRound)
		}
		lastRound = op.Round
	})
	if !gen.Run(20000) {
		t.Fatal("did not drain")
	}
	if int64(seen) != cl.Issued() {
		t.Fatalf("observer saw %d ops, cluster issued %d", seen, cl.Issued())
	}
}
