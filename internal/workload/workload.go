// Package workload generates the request patterns of the paper's
// evaluation (§VII-A): a fixed number of requests per synchronous round
// assigned to random nodes (Figures 2 and 3), or an independent per-node
// generation probability each round (Figure 4), with a configurable
// enqueue/push ratio. It can also script join/leave churn at given rounds.
package workload

import (
	"fmt"

	"skueue/internal/core"
	"skueue/internal/sim"
	"skueue/internal/xrand"
)

// Spec describes a request generation pattern.
type Spec struct {
	// Rounds of active generation; afterwards the caller drains.
	Rounds int
	// RequestsPerRound, when positive, issues that many requests per round
	// at uniformly random clients (the paper's Figure 2/3 setup uses 10).
	RequestsPerRound int
	// PerNodeProb, when positive, lets every eligible client generate a
	// request each round with this probability (Figure 4 setup).
	PerNodeProb float64
	// EnqRatio is the probability that a generated request is an
	// ENQUEUE/PUSH; the rest are DEQUEUE/POP.
	EnqRatio float64
	// Levels, when > 1, spreads enqueues uniformly over the priority
	// levels [0, Levels) for heap-mode clusters; otherwise every enqueue
	// is issued at level 0 (the only level queue and stack mode have).
	Levels int
}

// Validate reports configuration errors.
func (s Spec) Validate() error {
	if s.Rounds <= 0 {
		return fmt.Errorf("workload: Rounds must be positive")
	}
	if (s.RequestsPerRound > 0) == (s.PerNodeProb > 0) {
		return fmt.Errorf("workload: exactly one of RequestsPerRound and PerNodeProb must be set")
	}
	if s.EnqRatio < 0 || s.EnqRatio > 1 {
		return fmt.Errorf("workload: EnqRatio must be in [0,1]")
	}
	return nil
}

// ChurnEvent schedules a join or leave at the start of a round.
type ChurnEvent struct {
	Round int
	Join  bool
	// Proc: contact process for joins, leaving process for leaves.
	Proc int
}

// Op is one generated request as observed by SetObserver: the round it
// was issued in, the client node it was issued at, its kind, and (for
// enqueues under Spec.Levels) its priority level.
type Op struct {
	Round  int
	Client sim.NodeID
	Enq    bool
	Pri    int32
}

// Generator drives a cluster through a workload.
type Generator struct {
	cl    *core.Cluster
	spec  Spec
	rng   *xrand.RNG
	churn []ChurnEvent
	round int
	obs   func(Op)
}

// New prepares a generator with its own deterministic randomness.
func New(cl *core.Cluster, spec Spec, seed int64) (*Generator, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if spec.Levels > cl.HeapLevels() {
		return nil, fmt.Errorf("workload: Levels %d exceeds the cluster's %d priority levels", spec.Levels, cl.HeapLevels())
	}
	return &Generator{cl: cl, spec: spec, rng: xrand.New(seed).Fork("workload")}, nil
}

// Schedule adds churn events (may be called before running).
func (g *Generator) Schedule(events ...ChurnEvent) { g.churn = append(g.churn, events...) }

// SetObserver registers fn to be called synchronously for every request
// the generator issues, in issue order. The determinism tests and the
// chaos harness use it to capture the exact op stream of a run; identical
// seed and spec must reproduce it byte for byte.
func (g *Generator) SetObserver(fn func(Op)) { g.obs = fn }

// Round returns the number of generation rounds completed.
func (g *Generator) Round() int { return g.round }

// Step generates one round of requests (and due churn events) and then
// advances the simulation by one round. It reports whether generation
// rounds remain.
func (g *Generator) Step() bool {
	if g.round >= g.spec.Rounds {
		return false
	}
	for _, ev := range g.churn {
		if ev.Round == g.round {
			if ev.Join {
				g.cl.JoinProcess(ev.Proc)
			} else {
				g.cl.LeaveProcess(ev.Proc)
			}
		}
	}
	clients := g.cl.ActiveClients()
	if len(clients) > 0 {
		if g.spec.RequestsPerRound > 0 {
			for i := 0; i < g.spec.RequestsPerRound; i++ {
				g.issue(clients[g.rng.Intn(len(clients))])
			}
		} else {
			for _, c := range clients {
				if g.rng.Bool(g.spec.PerNodeProb) {
					g.issue(c)
				}
			}
		}
	}
	g.cl.Step()
	g.round++
	return g.round < g.spec.Rounds
}

func (g *Generator) issue(c sim.NodeID) {
	enq := g.rng.Bool(g.spec.EnqRatio)
	var pri int32
	if enq && g.spec.Levels > 1 {
		pri = int32(g.rng.Intn(g.spec.Levels))
	}
	if g.obs != nil {
		g.obs(Op{Round: g.round, Client: c, Enq: enq, Pri: pri})
	}
	if enq {
		g.cl.EnqueuePriBlob(c, pri, nil)
	} else {
		g.cl.Dequeue(c)
	}
}

// Run executes all generation rounds and then drains the system: the
// paper's measurement protocol ("after 1000 rounds we stop the generation
// of requests and wait until all requests still being processed have
// finished"). It reports whether the system drained within maxDrain
// additional rounds.
func (g *Generator) Run(maxDrain int64) bool {
	for g.Step() {
	}
	return g.cl.Drain(maxDrain)
}
