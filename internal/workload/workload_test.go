package workload

import (
	"testing"

	"skueue/internal/batch"
	"skueue/internal/core"
)

func mkCluster(t *testing.T, n int, seed int64) *core.Cluster {
	t.Helper()
	cl, err := core.New(core.Config{Processes: n, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return cl
}

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		spec Spec
		ok   bool
	}{
		{Spec{Rounds: 10, RequestsPerRound: 5, EnqRatio: 0.5}, true},
		{Spec{Rounds: 10, PerNodeProb: 0.1, EnqRatio: 0.5}, true},
		{Spec{Rounds: 0, RequestsPerRound: 5}, false},
		{Spec{Rounds: 10}, false},
		{Spec{Rounds: 10, RequestsPerRound: 5, PerNodeProb: 0.5}, false},
		{Spec{Rounds: 10, RequestsPerRound: 5, EnqRatio: 1.5}, false},
	}
	for i, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("case %d: Validate() = %v, want ok=%v", i, err, c.ok)
		}
	}
}

func TestFixedRateGeneratesExactCounts(t *testing.T) {
	cl := mkCluster(t, 4, 1)
	gen, err := New(cl, Spec{Rounds: 50, RequestsPerRound: 3, EnqRatio: 0.5}, 7)
	if err != nil {
		t.Fatal(err)
	}
	if !gen.Run(20000) {
		t.Fatalf("did not drain")
	}
	if cl.Issued() != 150 {
		t.Fatalf("issued %d, want 150", cl.Issued())
	}
	if err := cl.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
}

func TestPerNodeProbApproximatesRate(t *testing.T) {
	cl := mkCluster(t, 8, 2)
	gen, err := New(cl, Spec{Rounds: 100, PerNodeProb: 0.25, EnqRatio: 0.6}, 9)
	if err != nil {
		t.Fatal(err)
	}
	if !gen.Run(30000) {
		t.Fatalf("did not drain")
	}
	// 24 clients * 100 rounds * 0.25 = 600 expected.
	if cl.Issued() < 450 || cl.Issued() > 750 {
		t.Fatalf("issued %d, expected ~600", cl.Issued())
	}
}

func TestEnqRatioRespected(t *testing.T) {
	cl := mkCluster(t, 4, 3)
	gen, _ := New(cl, Spec{Rounds: 100, RequestsPerRound: 5, EnqRatio: 0.8}, 11)
	if !gen.Run(30000) {
		t.Fatalf("did not drain")
	}
	enq := 0
	for _, op := range cl.History().Ops {
		if op.Kind == 0 { // seqcheck.Enqueue
			enq++
		}
	}
	frac := float64(enq) / float64(cl.Issued())
	if frac < 0.7 || frac > 0.9 {
		t.Fatalf("enqueue fraction %.2f, want ~0.8", frac)
	}
}

func TestChurnSchedule(t *testing.T) {
	cl := mkCluster(t, 4, 4)
	gen, _ := New(cl, Spec{Rounds: 120, RequestsPerRound: 1, EnqRatio: 0.7}, 13)
	gen.Schedule(
		ChurnEvent{Round: 20, Join: true, Proc: 0},
		ChurnEvent{Round: 60, Join: false, Proc: 2},
	)
	if !gen.Run(60000) {
		t.Fatalf("did not drain")
	}
	if !cl.Engine().RunUntil(func() bool { return cl.ChurnQuiescent() }, 60000) {
		t.Fatalf("churn did not settle")
	}
	if err := cl.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if got := cl.LiveRing().Len(); got != 12 {
		t.Fatalf("ring size %d after join+leave, want 12", got)
	}
}

func TestStackWorkload(t *testing.T) {
	cl, err := core.New(core.Config{Processes: 4, Seed: 5, Mode: batch.Stack})
	if err != nil {
		t.Fatal(err)
	}
	gen, _ := New(cl, Spec{Rounds: 80, PerNodeProb: 0.5, EnqRatio: 0.5}, 15)
	if !gen.Run(60000) {
		t.Fatalf("did not drain")
	}
	if err := cl.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if cl.Metrics().CombinedOps == 0 {
		t.Fatalf("expected some local combining at this rate")
	}
}

// TestHeapWorkload drives a heap-mode cluster with enqueues spread over
// every priority level; the drained history must pass CheckPriority
// (via the heap discipline's checker) and actually cover all levels.
func TestHeapWorkload(t *testing.T) {
	const levels = 3
	cl, err := core.New(core.Config{Processes: 4, Seed: 6, Mode: batch.Heap, HeapLevels: levels})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := New(cl, Spec{Rounds: 80, PerNodeProb: 0.5, EnqRatio: 0.6, Levels: levels}, 19)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int32]int)
	gen.SetObserver(func(op Op) {
		if op.Enq {
			seen[op.Pri]++
		}
	})
	if !gen.Run(60000) {
		t.Fatalf("did not drain")
	}
	if err := cl.CheckConsistency(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != levels {
		t.Fatalf("enqueues covered %d of %d levels: %v", len(seen), levels, seen)
	}
}

// TestWorkloadLevelsValidated: a Levels spec wider than the cluster's
// configured priority range is a construction error, not a later panic.
func TestWorkloadLevelsValidated(t *testing.T) {
	cl := mkCluster(t, 4, 7) // queue mode: one level
	if _, err := New(cl, Spec{Rounds: 10, RequestsPerRound: 2, EnqRatio: 0.5, Levels: 4}, 21); err == nil {
		t.Fatal("Levels 4 on a single-level cluster accepted")
	}
}

func TestDeterministicWorkload(t *testing.T) {
	run := func() int64 {
		cl := mkCluster(t, 4, 6)
		gen, _ := New(cl, Spec{Rounds: 60, RequestsPerRound: 2, EnqRatio: 0.5}, 17)
		gen.Run(20000)
		return cl.Issued()*1000 + int64(cl.History().Len())
	}
	if run() != run() {
		t.Fatalf("workload not deterministic")
	}
}
