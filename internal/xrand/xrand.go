// Package xrand provides the deterministic randomness used throughout the
// repository: a small, fast, seedable PRNG for simulation scheduling and
// workload generation, and keyed pseudorandom hash functions for node
// labels and DHT keys (the paper's "publicly known pseudorandom hash
// function", §II). Everything is reproducible from a single int64 seed so
// that every experiment and every failure is replayable.
package xrand

import "skueue/internal/fixpoint"

// SplitMix64 is the splitmix64 finalizer: a high-quality 64-bit mixing
// function. It is the basis of both the PRNG seeding and the keyed hashes.
func SplitMix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Hasher is a keyed pseudorandom hash from uint64 to the unit interval.
// Distinct keys give independent-looking hash functions; the same key gives
// the same function everywhere ("publicly known").
type Hasher struct {
	key uint64
}

// NewHasher derives a hasher from a seed and a domain-separation tag so
// that e.g. label hashing and position hashing are independent functions.
func NewHasher(seed int64, tag string) Hasher {
	k := SplitMix64(uint64(seed))
	for _, c := range tag {
		k = SplitMix64(k ^ uint64(c))
	}
	return Hasher{key: k}
}

// Frac hashes x to a pseudorandom point in [0,1).
func (h Hasher) Frac(x uint64) fixpoint.Frac {
	return fixpoint.Frac(SplitMix64(h.key ^ SplitMix64(x)))
}

// Uint64 hashes x to a pseudorandom 64-bit value.
func (h Hasher) Uint64(x uint64) uint64 {
	return SplitMix64(h.key + 0x632be59bd9b4e019 ^ SplitMix64(x))
}

// RNG is a deterministic pseudorandom number generator (xoshiro256**).
// It is not safe for concurrent use; the simulation is single-threaded by
// design, and independent components should derive their own RNG via Fork.
type RNG struct {
	s [4]uint64
}

// New returns an RNG seeded from seed via splitmix64, per the xoshiro
// authors' recommendation.
func New(seed int64) *RNG {
	r := &RNG{}
	x := uint64(seed)
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

// Fork derives an independent generator from the current one, tagged so
// that different subsystems forked from the same parent do not correlate.
func (r *RNG) Fork(tag string) *RNG {
	h := r.Uint64()
	for _, c := range tag {
		h = SplitMix64(h ^ uint64(c))
	}
	return New(int64(h))
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next pseudorandom 64-bit value.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a pseudorandom int in [0,n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative pseudorandom int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a pseudorandom float64 in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Frac returns a uniform pseudorandom point on the unit interval.
func (r *RNG) Frac() fixpoint.Frac { return fixpoint.Frac(r.Uint64()) }

// Perm returns a pseudorandom permutation of [0,n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles the slice in place (Fisher-Yates).
func (r *RNG) ShuffleInts(p []int) {
	for i := len(p) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
}

// Shuffle shuffles n elements using the provided swap function.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}
