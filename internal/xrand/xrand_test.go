package xrand

import (
	"math"
	"testing"

	"skueue/internal/fixpoint"
)

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference outputs of the splitmix64 generator seeded with 0. Our
	// SplitMix64(state) performs one generator step (advance by the golden
	// ratio, then finalize), so output n equals SplitMix64((n-1)*golden).
	const golden = 0x9e3779b97f4a7c15
	want := []uint64{
		0xe220a8397b1dcdaf,
		0x6e789e6aa1b965f4,
		0x06c45d188009454f,
	}
	state := uint64(0)
	for i, w := range want {
		if got := SplitMix64(state); got != w {
			t.Fatalf("splitmix64 output %d = %#x, want %#x", i, got, w)
		}
		state += golden
	}
}

func TestSplitMix64Deterministic(t *testing.T) {
	for _, x := range []uint64{0, 1, 42, math.MaxUint64} {
		if SplitMix64(x) != SplitMix64(x) {
			t.Fatalf("SplitMix64 not deterministic at %d", x)
		}
	}
	if SplitMix64(1) == SplitMix64(2) {
		t.Errorf("suspicious collision")
	}
}

func TestHasherDomainSeparation(t *testing.T) {
	h1 := NewHasher(7, "label")
	h2 := NewHasher(7, "position")
	h3 := NewHasher(8, "label")
	same := 0
	for x := uint64(0); x < 100; x++ {
		if h1.Frac(x) == h2.Frac(x) {
			same++
		}
		if h1.Frac(x) == h3.Frac(x) {
			same++
		}
	}
	if same != 0 {
		t.Errorf("%d collisions between differently-keyed hashers", same)
	}
}

func TestHasherDeterminism(t *testing.T) {
	a := NewHasher(123, "t")
	b := NewHasher(123, "t")
	for x := uint64(0); x < 50; x++ {
		if a.Frac(x) != b.Frac(x) || a.Uint64(x) != b.Uint64(x) {
			t.Fatalf("hasher not deterministic at %d", x)
		}
	}
}

func TestHasherUniformity(t *testing.T) {
	// Chi-squared-ish sanity check: hash 0..9999 into 16 buckets.
	h := NewHasher(99, "uniform")
	const n, buckets = 10000, 16
	var count [buckets]int
	for x := uint64(0); x < n; x++ {
		count[h.Frac(x)>>60]++
	}
	want := float64(n) / buckets
	for i, c := range count {
		if math.Abs(float64(c)-want) > want*0.25 {
			t.Errorf("bucket %d has %d entries, want ~%.0f", i, c, want)
		}
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("RNG diverged at step %d", i)
		}
	}
	c := New(43)
	diff := false
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			diff = true
		}
	}
	if !diff {
		t.Errorf("different seeds produced identical streams")
	}
}

func TestRNGFork(t *testing.T) {
	f1 := New(42).Fork("one")
	f2 := New(42).Fork("one")
	for i := 0; i < 20; i++ {
		if f1.Uint64() != f2.Uint64() {
			t.Fatalf("forked RNGs with same lineage diverged")
		}
	}
	g := New(42).Fork("two")
	h := New(42).Fork("one")
	same := true
	for i := 0; i < 10; i++ {
		if g.Uint64() != h.Uint64() {
			same = false
		}
	}
	if same {
		t.Errorf("different fork tags produced identical streams")
	}
}

func TestIntnRange(t *testing.T) {
	r := New(1)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d out of range", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Errorf("Intn(0) should panic")
		}
	}()
	r.Intn(0)
}

func TestFloat64Range(t *testing.T) {
	r := New(2)
	sum := 0.0
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64() = %v out of range", f)
		}
		sum += f
	}
	if mean := sum / 10000; math.Abs(mean-0.5) > 0.02 {
		t.Errorf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestBoolProbability(t *testing.T) {
	r := New(3)
	hits := 0
	for i := 0; i < 10000; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if hits < 2700 || hits > 3300 {
		t.Errorf("Bool(0.3) hit %d/10000 times", hits)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(4)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestShuffleKeepsMultiset(t *testing.T) {
	r := New(5)
	s := []int{1, 2, 3, 4, 5, 6}
	sum := 0
	r.ShuffleInts(s)
	for _, v := range s {
		sum += v
	}
	if sum != 21 || len(s) != 6 {
		t.Errorf("shuffle changed contents: %v", s)
	}
}

func TestRNGFrac(t *testing.T) {
	r := New(6)
	var below fixpoint.Frac = fixpoint.Half
	lo := 0
	for i := 0; i < 10000; i++ {
		if r.Frac() < below {
			lo++
		}
	}
	if lo < 4700 || lo > 5300 {
		t.Errorf("Frac() below 0.5 %d/10000 times", lo)
	}
}

func TestInt63NonNegative(t *testing.T) {
	r := New(7)
	for i := 0; i < 1000; i++ {
		if r.Int63() < 0 {
			t.Fatal("Int63 returned negative")
		}
	}
}
