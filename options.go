package skueue

import (
	"time"

	"skueue/internal/transport"
	"skueue/internal/wire"
)

// Mode selects the data-structure semantics.
type Mode int

// Available semantics: FIFO queue (paper §III), LIFO stack (§VI), and a
// bounded-constant-priority heap (Skeap-style: a fixed number of priority
// levels, FIFO within each level; see WithHeap).
const (
	Queue Mode = iota
	Stack
	Heap
)

func (m Mode) String() string {
	switch m {
	case Stack:
		return "stack"
	case Heap:
		return "heap"
	default:
		return "queue"
	}
}

// options collects the Open configuration; every Option mutates it.
type options struct {
	processes       int
	seed            int64
	mode            Mode
	heapLevels      int
	async           bool
	manual          bool
	maxDelay        int
	timeoutEvery    int
	shuffleTimeouts bool
	updateThreshold int
	noStage4Wait    bool
	noCombining     bool
	quantum         int64
	remote          string
	wan             WANProfile
	session         string
	dialTimeout     time.Duration
	reconnRetries   int
	reconnBackoff   time.Duration
}

func defaultOptions() options {
	return options{
		processes: 4,
		quantum:   32,
	}
}

// Option configures a Client at Open time.
type Option func(*options)

// WithProcesses sets the initial number of member processes (default 4,
// minimum 1). Each process emulates three virtual nodes (Definition 2).
func WithProcesses(n int) Option { return func(o *options) { o.processes = n } }

// WithSeed makes the whole run reproducible: labels, keys, scheduling and
// any workload randomness all derive from this seed.
func WithSeed(seed int64) Option { return func(o *options) { o.seed = seed } }

// WithMode selects queue (default), stack or heap semantics. Heap mode
// opened through WithMode uses a single priority level; use WithHeap to
// set the level count.
func WithMode(m Mode) Option { return func(o *options) { o.mode = m } }

// WithHeap selects heap semantics with the given number of priority
// levels (minimum 1): EnqueuePri tags each element with a level in
// [0, levels), and DequeueMin returns the oldest element of the lowest
// non-empty level. Plain Enqueue/Dequeue return ErrWrongMode on a heap
// client — the priority API is the only way to touch a heap, so a caller
// can never silently drop priorities.
func WithHeap(levels int) Option {
	return func(o *options) {
		o.mode = Heap
		if levels < 1 {
			levels = 1
		}
		o.heapLevels = levels
	}
}

// WithAsync runs the fully asynchronous message-passing model (§I-B)
// instead of the synchronous round model the evaluation uses.
func WithAsync() Option { return func(o *options) { o.async = true } }

// WithAsyncDelays tunes the asynchronous scheduler: maxDelay bounds each
// message's delivery delay, timeoutEvery bounds the gap between TIMEOUT
// firings. Zero values keep the engine defaults.
func WithAsyncDelays(maxDelay, timeoutEvery int) Option {
	return func(o *options) {
		o.maxDelay = maxDelay
		o.timeoutEvery = timeoutEvery
	}
}

// WithShuffledTimeouts randomizes the per-round TIMEOUT order in the
// synchronous model, widening schedule coverage for torture tests.
func WithShuffledTimeouts() Option { return func(o *options) { o.shuffleTimeouts = true } }

// WithUpdateThreshold sets how many pending join/leave requests the anchor
// accumulates before starting an update phase (default 1).
func WithUpdateThreshold(n int) Option { return func(o *options) { o.updateThreshold = n } }

// WithManualClock disables the autopilot runner: simulated time advances
// only through Step, Run, Drain and Settle on the client (or through the
// blocking methods, which drive the clock inline on the calling
// goroutine). This is the deterministic mode the experiment harness, the
// sim CLI and the seqcheck-driven tests use.
func WithManualClock() Option { return func(o *options) { o.manual = true } }

// WithAutopilotQuantum sets how many rounds (time units when async) the
// autopilot advances per scheduling slice while work is pending
// (default 32). Smaller values reduce blocking-call latency jitter;
// larger values reduce lock traffic.
func WithAutopilotQuantum(rounds int64) Option { return func(o *options) { o.quantum = rounds } }

// WithoutStage4Wait disables the §VI completion wait (unsafe ablation: the
// paper's counterexample becomes reachable and sequential consistency can
// break under asynchrony). See DESIGN.md §7.
func WithoutStage4Wait() Option { return func(o *options) { o.noStage4Wait = true } }

// WithoutLocalCombining disables the §VI local push/pop combining (unsafe
// ablation: stack batches grow and Theorem 20 no longer holds). See
// DESIGN.md §7.
func WithoutLocalCombining() Option { return func(o *options) { o.noCombining = true } }

// WANProfile describes wide-area delivery conditions injected into the
// simulated cluster: every message is charged extra delay sampled from
// the profile on top of the model's native scheduling. Loss is modeled as
// retransmission latency (k lost attempts cost k RTOs), so the reliable
// channel the protocol assumes is preserved. RoundLength calibrates the
// simulated wall-clock length of one synchronous round (default 1ms) and
// so how many rounds a given latency spans.
type WANProfile struct {
	// Latency is the base one-way delay per message.
	Latency time.Duration
	// Jitter widens each delay by a uniform sample from [0, Jitter).
	Jitter time.Duration
	// Loss is the per-attempt loss probability in [0, 1); each lost
	// attempt charges one retransmission timeout of extra delay.
	Loss float64
	// RTO overrides the retransmission timeout (default 4×Latency).
	RTO time.Duration
	// RoundLength is the simulated duration of one round (default 1ms).
	RoundLength time.Duration
}

func (w WANProfile) shape() transport.Shape {
	return transport.Shape{
		Latency: w.Latency,
		Jitter:  w.Jitter,
		Loss:    w.Loss,
		RTO:     w.RTO,
		Round:   w.RoundLength,
	}
}

// Enabled reports whether the profile shapes anything; the zero profile
// is a no-op.
func (w WANProfile) Enabled() bool { return w.shape().Enabled() }

// WithWAN runs the simulated cluster under a WAN delivery profile
// (latency, jitter, loss as retransmission delay). Works in both the
// synchronous and asynchronous models; ignored by WithRemote clients,
// where shaping belongs to the servers (skueue-server -wan-latency,
// -wan-jitter, -wan-loss).
func WithWAN(p WANProfile) Option { return func(o *options) { o.wan = p } }

// WithRemote connects the client to a networked Skueue cluster member
// (started with cmd/skueue-server) at the given address instead of
// hosting a simulated cluster in-process. Enqueue/Dequeue (and the async
// variants) round-trip over TCP; Check fetches and merges the completion
// histories of all cluster members. Values must be gob-encodable (see
// RegisterValue). Simulation-only surfaces — process pinning, Admin,
// manual clock, Cluster introspection — return ErrUnsupported (which
// wraps ErrRemote) or zero values; of the other Open options only
// WithSession, WithDialTimeout and WithReconnect apply.
func WithRemote(addr string) Option { return func(o *options) { o.remote = addr } }

// WithSession gives a WithRemote client a durable session under the
// given client-chosen ID: the member journals a session record ahead of
// the session's first operation and retains every journaled outcome
// until the client acknowledges its delivery, so a lost connection no
// longer fails pending futures — the client reconnects (see
// WithReconnect), resumes the session at the owning member (finding its
// new address through the cluster's address book if it restarted), and
// collects each outcome exactly once. Read-your-writes and monotonic
// dequeues hold across the failover and are verified per session by
// Client.Check. The ID must be unique per logical client — reusing a
// live session's ID detaches its previous connection. Empty (the zero
// value, and the default) keeps the ephemeral behavior: a lost
// connection drains every pending future with ErrUnreachable.
func WithSession(id string) Option { return func(o *options) { o.session = id } }

// WithDialTimeout bounds each TCP dial a WithRemote client performs —
// the initial connection, session reconnects, and the per-member history
// fetches behind Check and Stats. Zero (the default) selects 10s.
func WithDialTimeout(d time.Duration) Option { return func(o *options) { o.dialTimeout = d } }

// WithReconnect tunes the reconnect loop of a WithSession client:
// maxRetries bounds how many resume attempts follow a lost connection
// before the client gives up and drains its pending futures with
// ErrUnreachable (marked Indeterminate), and backoff is the base delay
// between attempts — exponential with jitter, capped at 2s. Zero values
// select the defaults (8 retries, 100ms base). Ephemeral clients (no
// WithSession) ignore it: they never reconnect.
func WithReconnect(maxRetries int, backoff time.Duration) Option {
	return func(o *options) {
		o.reconnRetries = maxRetries
		o.reconnBackoff = backoff
	}
}

// RegisterValue registers a concrete user value type for transmission to
// a remote cluster (the wire codec is encoding/gob; common scalar and
// composite types are pre-registered).
//
//skueue:wire-register
func RegisterValue(v any) { wire.RegisterValue(v) }
