package skueue

import (
	"fmt"
	"math/rand"
	"net"
	"sort"
	"sync"
	"time"

	"skueue/internal/seqcheck"
	"skueue/internal/wire"
)

// Reconnect defaults (see WithDialTimeout and WithReconnect).
const (
	defaultDialTimeout = 10 * time.Second
	defaultRetries     = 8
	defaultBackoff     = 100 * time.Millisecond
	maxBackoff         = 2 * time.Second
	// ackEvery bounds how many settled outcomes accumulate before the
	// client sends a standalone cursor update; submissions piggyback the
	// cursor anyway, so this only matters for receive-heavy phases.
	ackEvery = 32
)

// pendingOp is one submitted, not yet settled operation: everything needed
// to re-present it after a reconnect, plus the session's delivered-rank
// floor at submission time (the binding lower bound for the per-session
// order check, see seqcheck.CheckSession).
type pendingOp struct {
	f     *Future
	enq   bool
	pri   int32
	priOp bool
	blob  []byte
	floor int64
}

// remoteClient is the WithRemote backend of a Client: instead of hosting a
// simulated cluster in-process, operations are submitted over TCP to a
// cluster member started with cmd/skueue-server, and completions stream
// back asynchronously. The Future machinery is shared with the simulated
// mode; only submission and resolution differ.
//
// Without WithSession the connection is the client: when it dies, every
// pending future drains fail-fast with ErrUnreachable (indeterminate) and
// the client closes. With WithSession the member retains the session's
// journaled outcomes server-side, so a dead connection instead enters the
// reconnect loop: locate the session's owner (through the address book if
// it moved), resume, re-present the unsettled window, and dedupe the
// redelivered outcomes by per-session sequence — each future completes
// exactly once.
type remoteClient struct {
	c          *Client
	mode       Mode
	heapLevels int

	// Session configuration, immutable after open.
	session     string
	dialTimeout time.Duration
	retries     int
	backoff     time.Duration

	mu      sync.Mutex
	conn    *wire.Conn
	book    []wire.MemberInfo
	owner   int32 // member index holding the session (HelloAck.Index)
	seq     uint64
	pending map[uint64]*pendingOp
	// acked is the settled low-water mark: every sequence at or below it
	// completed client-side, so the server may drop its retained
	// outcomes. settled holds the out-of-order settlements above it.
	acked    uint64
	settled  map[uint64]bool
	sinceAck int
	// versions is the session's version vector: the highest serialization
	// rank delivered by each member the session was attached to. Its
	// maximum (maxRank) is the floor stamped on new submissions.
	versions map[int32]int64
	maxRank  int64
	// oplog records every successfully delivered outcome for the
	// per-session order check Client.Check runs (seqcheck.CheckSession).
	oplog   []seqcheck.SessionOp
	readErr error
	closed  bool
	rng     *rand.Rand
}

// dialRemote establishes the client connection and handshake.
func dialRemote(o options) (*remoteClient, error) {
	r := &remoteClient{
		session:     o.session,
		dialTimeout: o.dialTimeout,
		retries:     o.reconnRetries,
		backoff:     o.reconnBackoff,
		pending:     make(map[uint64]*pendingOp),
		settled:     make(map[uint64]bool),
		versions:    make(map[int32]int64),
		rng:         rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	if r.dialTimeout <= 0 {
		r.dialTimeout = defaultDialTimeout
	}
	if r.retries <= 0 {
		r.retries = defaultRetries
	}
	if r.backoff <= 0 {
		r.backoff = defaultBackoff
	}
	conn, ack, err := r.handshake(o.remote, false)
	if err != nil {
		return nil, err
	}
	r.conn = conn
	r.book = ack.Book
	r.owner = ack.Index
	switch ack.Mode {
	case "stack":
		r.mode = Stack
	case "heap":
		r.mode = Heap
		r.heapLevels = int(ack.HeapLevels)
		if r.heapLevels < 1 {
			r.heapLevels = 1
		}
	}
	if r.session != "" && ack.SessionSeq > r.seq {
		// A fresh process adopting an existing durable session has no
		// in-memory counter; continue numbering above the member's
		// high-water mark or new ops would collide with dead history
		// (the member dedupes them silently) and hang forever. The acked
		// cursor likewise resumes from the member's view.
		r.seq = ack.SessionSeq
		r.acked = ack.SessionSeq
	}
	return r, nil
}

// handshake dials one member and runs the client hello exchange,
// presenting the session (if any) and its settled cursor. resume asks for
// attach-only semantics: a member that does not hold the session answers
// SessionResumed false instead of creating it.
func (r *remoteClient) handshake(addr string, resume bool) (*wire.Conn, wire.HelloAck, error) {
	nc, err := net.DialTimeout("tcp", addr, r.dialTimeout)
	if err != nil {
		return nil, wire.HelloAck{}, fmt.Errorf("skueue: dialing %s: %v: %w", addr, err, ErrUnreachable)
	}
	conn := wire.NewConn(nc)
	r.mu.Lock()
	ack := r.acked
	r.mu.Unlock()
	hello := wire.Hello{Kind: "client", Session: r.session, SessionResume: resume, SessionAck: ack}
	if err := conn.Write(hello); err != nil {
		conn.Close()
		return nil, wire.HelloAck{}, err
	}
	v, err := conn.Read()
	if err != nil {
		conn.Close()
		return nil, wire.HelloAck{}, fmt.Errorf("skueue: handshake with %s: %w", addr, err)
	}
	helloAck, ok := v.(wire.HelloAck)
	if !ok {
		conn.Close()
		return nil, wire.HelloAck{}, fmt.Errorf("skueue: %s answered %T to hello", addr, v)
	}
	return conn, helloAck, nil
}

// reader dispatches completion frames to futures until the connection
// closes. An ephemeral client (no WithSession) then drains every pending
// future fail-fast with ErrUnreachable and closes the client — without
// the drain, callers polling Done()/Completed() instead of Wait would
// hang forever on a dropped connection. A session client instead runs the
// reconnect loop and keeps reading on the replacement connection; only an
// exhausted loop (or a lost session) drains.
func (r *remoteClient) reader() {
	for {
		r.mu.Lock()
		conn := r.conn
		r.mu.Unlock()
		v, err := conn.Read()
		if err != nil {
			if r.session != "" && r.reconnect() {
				continue
			}
			r.drain(err)
			r.c.failRemote()
			return
		}
		if done, ok := v.(wire.CliDone); ok {
			r.dispatch(done)
		}
		// Other frame kinds (histories etc.) use dedicated connections.
	}
}

// drain fails every pending future with the connection error. The
// operations may or may not have executed server-side — indeterminate —
// and the error wraps ErrUnreachable (hence ErrRemote) so callers can
// dispatch on either.
func (r *remoteClient) drain(cause error) {
	r.mu.Lock()
	r.readErr = cause
	pending := r.pending
	r.pending = make(map[uint64]*pendingOp)
	r.mu.Unlock()
	for _, op := range pending {
		op.f.err = fmt.Errorf("skueue: server connection lost: %v: %w", cause, ErrUnreachable)
		op.f.indeterminate = true
		close(op.f.done)
	}
}

// dispatch settles one completion frame. Redeliveries are expected with a
// session — a resume replays retained outcomes, and a parked release can
// race that replay — so anything not in the pending window is dropped:
// the future completed the first time.
func (r *remoteClient) dispatch(done wire.CliDone) {
	r.mu.Lock()
	op := r.pending[done.Seq]
	if op == nil {
		r.mu.Unlock()
		return
	}
	delete(r.pending, done.Seq)
	r.settled[done.Seq] = true
	for r.settled[r.acked+1] {
		delete(r.settled, r.acked+1)
		r.acked++
	}
	failed := done.Err != ""
	if r.session != "" && !failed {
		if done.Rank > 0 {
			if done.Rank > r.versions[r.owner] {
				r.versions[r.owner] = done.Rank
			}
			if done.Rank > r.maxRank {
				r.maxRank = done.Rank
			}
		}
		r.oplog = append(r.oplog, seqcheck.SessionOp{ReqID: done.ReqID, Floor: op.floor, Rank: done.Rank})
	}
	r.sinceAck++
	var ackConn *wire.Conn
	var ack uint64
	if r.session != "" && r.sinceAck >= ackEvery {
		r.sinceAck = 0
		ack = r.acked
		ackConn = r.conn
	}
	r.mu.Unlock()

	f := op.f
	f.rounds = done.Rounds
	if done.Unreachable {
		// The cluster lost a member past the give-up timeout and abandoned
		// the operation rather than blocking forever (fail-stop
		// detection); its outcome is unknown.
		f.err = fmt.Errorf("skueue: %s: %w", done.Err, ErrUnreachable)
		f.indeterminate = true
	} else if done.WrongMode {
		// The server policed an operation flavour that does not match the
		// cluster's mode; typed so callers can dispatch with errors.Is.
		f.err = fmt.Errorf("%w: %s", ErrWrongMode, done.Err)
	} else if failed {
		// Submission failed server-side (e.g. no live local process): the
		// operation never entered the queue, so it must surface as an
		// error, not as a ⊥ or a silent success.
		f.err = fmt.Errorf("skueue: server rejected operation: %s", done.Err)
	} else if f.kind == seqcheck.Dequeue {
		f.bottom = done.Bottom
		if !done.Bottom {
			val, derr := wire.DecodeValue(done.Value)
			if derr != nil {
				// The element is consumed either way; losing the value
				// silently would be worse than reporting it.
				f.err = derr
			} else {
				f.value = val
			}
		}
	}
	close(f.done)
	if ackConn != nil {
		ackConn.Write(wire.CliSessionAck{Ack: ack}) // best-effort; piggybacked anyway
	}
}

// reconnect re-establishes a session client's connection after a loss:
// locate the owner, resume the session, swap the connection in, and
// re-present the unsettled window in submission order (the owner dedupes
// by per-session sequence, so operations that survived inside the member
// are not injected twice). Returns false when the client closed, the
// retry budget ran out, or the owner itself no longer knows the session
// (its state was lost — the outcomes are unrecoverable).
func (r *remoteClient) reconnect() bool {
	for attempt := 0; attempt < r.retries; attempt++ {
		if attempt > 0 {
			time.Sleep(r.backoffFor(attempt))
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return false
		}
		book := append([]wire.MemberInfo(nil), r.book...)
		owner := r.owner
		r.mu.Unlock()
		conn, ack, lost := r.resumeDial(book, owner)
		if lost {
			return false
		}
		if conn == nil {
			continue
		}
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			conn.Close()
			return false
		}
		r.conn = conn
		r.owner = ack.Index
		if len(ack.Book) > 0 {
			r.book = ack.Book
		}
		seqs := make([]uint64, 0, len(r.pending))
		for seq := range r.pending {
			seqs = append(seqs, seq)
		}
		sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
		ops := make([]*pendingOp, len(seqs))
		for i, seq := range seqs {
			ops[i] = r.pending[seq]
		}
		cursor := r.acked
		r.mu.Unlock()
		for i, seq := range seqs {
			op := ops[i]
			var req any
			if op.enq {
				req = wire.CliEnqueue{Seq: seq, Value: op.blob, Ack: cursor, Pri: op.pri, PriOp: op.priOp}
			} else {
				req = wire.CliDequeue{Seq: seq, Ack: cursor, PriOp: op.priOp}
			}
			if conn.Write(req) != nil {
				break // the reader sees the same error and reconnects again
			}
		}
		return true
	}
	return false
}

// resumeDial tries every known member — the session owner first, then the
// rest of the book, then a freshly fetched book (the restarted owner
// rejoins under a new address that only surviving members know). lost
// reports the one unrecoverable answer: the owner itself no longer holds
// the session.
func (r *remoteClient) resumeDial(book []wire.MemberInfo, owner int32) (conn *wire.Conn, ack wire.HelloAck, lost bool) {
	for round := 0; round < 2; round++ {
		sort.SliceStable(book, func(i, j int) bool {
			return (book[i].Index == owner) && (book[j].Index != owner)
		})
		for _, m := range book {
			c, a, err := r.handshake(m.Addr, true)
			if err != nil {
				continue
			}
			if a.SessionResumed {
				return c, a, false
			}
			c.Close()
			if a.Index == owner {
				// The owner answered and does not know the session: its
				// journal and snapshots lost it. Retrying cannot help.
				return nil, wire.HelloAck{}, true
			}
		}
		if round == 0 {
			book = r.freshBook()
		}
	}
	return nil, wire.HelloAck{}, false
}

// backoffFor returns the jittered exponential delay before reconnect
// attempt n (n ≥ 1): base·2ⁿ⁻¹ capped at maxBackoff, of which the upper
// half is uniformly jittered so clients orphaned by the same crash do not
// stampede the restarted member in lockstep.
func (r *remoteClient) backoffFor(attempt int) time.Duration {
	d := r.backoff << (attempt - 1)
	if d > maxBackoff || d <= 0 {
		d = maxBackoff
	}
	half := d / 2
	r.mu.Lock()
	j := time.Duration(r.rng.Int63n(int64(half) + 1))
	r.mu.Unlock()
	return half + j
}

// submit sends one operation and registers its future.
func (r *remoteClient) submit(kind seqcheck.Kind, proc int, pri int32, priOp bool, value any) (*Future, error) {
	if proc != AnyProcess {
		return nil, fmt.Errorf("process pinning is not available over the network: %w", ErrUnsupported)
	}
	var blob []byte
	if kind == seqcheck.Enqueue {
		var err error
		if blob, err = wire.EncodeValue(value); err != nil {
			return nil, err
		}
	}
	f := &Future{c: r.c, kind: kind, done: make(chan struct{})}
	r.mu.Lock()
	if r.readErr != nil {
		err := r.readErr
		r.mu.Unlock()
		return nil, fmt.Errorf("skueue: server connection failed: %v: %w", err, ErrUnreachable)
	}
	r.seq++
	seq := r.seq
	f.id = seq
	r.pending[seq] = &pendingOp{f: f, enq: kind == seqcheck.Enqueue, pri: pri, priOp: priOp, blob: blob, floor: r.maxRank}
	cursor := r.acked
	conn := r.conn
	r.mu.Unlock()
	var req any
	if kind == seqcheck.Enqueue {
		req = wire.CliEnqueue{Seq: seq, Value: blob, Ack: cursor, Pri: pri, PriOp: priOp}
	} else {
		req = wire.CliDequeue{Seq: seq, Ack: cursor, PriOp: priOp}
	}
	if err := conn.Write(req); err != nil {
		if r.session != "" {
			// The op stays pending: the reconnect loop re-presents it on
			// the replacement connection (the reader is already failing
			// over, since the write and read sides die together).
			return f, nil
		}
		r.mu.Lock()
		delete(r.pending, seq)
		r.mu.Unlock()
		return nil, fmt.Errorf("skueue: submitting to server: %w", err)
	}
	return f, nil
}

// checkSession verifies the session's dependency order against the merged
// cluster history (Client.Check calls it after the Definition 1 check);
// ephemeral clients have nothing to verify.
func (r *remoteClient) checkSession(h *seqcheck.History) error {
	r.mu.Lock()
	ops := append([]seqcheck.SessionOp(nil), r.oplog...)
	id := r.session
	r.mu.Unlock()
	if id == "" || len(ops) == 0 {
		return nil
	}
	return seqcheck.CheckSession(h, ops)
}

// close shuts the connection; the reader then fails remaining futures
// (and a session client stops reconnecting).
func (r *remoteClient) close() {
	r.mu.Lock()
	r.closed = true
	conn := r.conn
	r.mu.Unlock()
	conn.Close()
}

// freshBook asks the first reachable member for its current address book,
// so members that joined — or rejoined under a new address — after this
// client opened are included. Falls back to the last known book if nobody
// answers.
func (r *remoteClient) freshBook() []wire.MemberInfo {
	r.mu.Lock()
	book := append([]wire.MemberInfo(nil), r.book...)
	r.mu.Unlock()
	for _, m := range book {
		nc, err := net.DialTimeout("tcp", m.Addr, 5*time.Second)
		if err != nil {
			continue
		}
		conn := wire.NewConn(nc)
		if conn.Write(wire.Hello{Kind: "client"}) == nil {
			if v, err := conn.Read(); err == nil {
				if ack, ok := v.(wire.HelloAck); ok && len(ack.Book) > 0 {
					conn.Close()
					return ack.Book
				}
			}
		}
		conn.Close()
	}
	return book
}

// histories fetches the completion history of every cluster member over
// fresh connections and merges them. Completions are recorded where they
// finish — enqueues at the member storing the element — so no single
// member holds the full execution. The member list is re-fetched first:
// members admitted after this client opened hold completions too.
func (r *remoteClient) histories() (*seqcheck.History, error) {
	hist := &seqcheck.History{}
	for _, m := range r.freshBook() {
		nc, err := net.DialTimeout("tcp", m.Addr, r.dialTimeout)
		if err != nil {
			return nil, fmt.Errorf("skueue: dialing member %d (%s): %v: %w", m.Index, m.Addr, err, ErrUnreachable)
		}
		conn := wire.NewConn(nc)
		err = func() error {
			defer conn.Close()
			if err := conn.Write(wire.Hello{Kind: "client"}); err != nil {
				return err
			}
			if _, err := conn.Read(); err != nil {
				return err
			}
			if err := conn.Write(wire.CliHistory{}); err != nil {
				return err
			}
			v, err := conn.Read()
			if err != nil {
				return err
			}
			resp, ok := v.(wire.CliHistoryResp)
			if !ok {
				return fmt.Errorf("member %d answered %T to history request", m.Index, v)
			}
			hist.Ops = append(hist.Ops, resp.Ops...)
			return nil
		}()
		if err != nil {
			return nil, err
		}
	}
	return hist, nil
}

// openRemote builds the WithRemote flavour of a Client: no cluster, no
// autopilot — just the connection and the shared Future machinery.
func openRemote(o options) (*Client, error) {
	r, err := dialRemote(o)
	if err != nil {
		return nil, err
	}
	c := &Client{
		mode:       r.mode,
		heapLevels: r.heapLevels,
		rem:        r,
		wake:       make(chan struct{}, 1),
		quit:       make(chan struct{}),
		stopped:    make(chan struct{}),
	}
	close(c.stopped) // no autopilot to wait for on Close
	r.c = c
	go r.reader()
	return c, nil
}

// failRemote is called by the reader when the server connection dies for
// good: it closes the client so every blocked call returns ErrClosed.
func (c *Client) failRemote() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.quit)
	c.mu.Unlock()
}
