package skueue

import (
	"fmt"
	"net"
	"sync"
	"time"

	"skueue/internal/seqcheck"
	"skueue/internal/wire"
)

// remoteClient is the WithRemote backend of a Client: instead of hosting a
// simulated cluster in-process, operations are submitted over TCP to a
// cluster member started with cmd/skueue-server, and completions stream
// back asynchronously. The Future machinery is shared with the simulated
// mode; only submission and resolution differ.
type remoteClient struct {
	c    *Client
	conn *wire.Conn
	book []wire.MemberInfo
	mode Mode

	mu      sync.Mutex
	seq     uint64
	pending map[uint64]*Future
	readErr error
}

// dialRemote establishes the client connection and handshake.
func dialRemote(addr string) (*remoteClient, error) {
	nc, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("skueue: dialing %s: %w", addr, err)
	}
	conn := wire.NewConn(nc)
	if err := conn.Write(wire.Hello{Kind: "client"}); err != nil {
		conn.Close()
		return nil, err
	}
	v, err := conn.Read()
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("skueue: handshake with %s: %w", addr, err)
	}
	ack, ok := v.(wire.HelloAck)
	if !ok {
		conn.Close()
		return nil, fmt.Errorf("skueue: %s answered %T to hello", addr, v)
	}
	mode := Queue
	if ack.Mode == "stack" {
		mode = Stack
	}
	return &remoteClient{
		conn:    conn,
		book:    ack.Book,
		mode:    mode,
		pending: make(map[uint64]*Future),
	}, nil
}

// reader dispatches completion frames to futures until the connection
// closes, then drains every pending future with the connection error and
// fails the client so blocked calls return. The drain matters for
// callers polling Done()/Completed() instead of Wait: without it a
// dropped server connection left their futures pending forever — Done
// never fired, Completed stayed false, and Err lied nil.
func (r *remoteClient) reader() {
	for {
		v, err := r.conn.Read()
		if err != nil {
			r.mu.Lock()
			r.readErr = err
			pending := r.pending
			r.pending = make(map[uint64]*Future)
			r.mu.Unlock()
			for _, f := range pending {
				// The operation may or may not have executed server-side:
				// indeterminate, reported as a remote failure so callers
				// can dispatch on ErrRemote.
				f.err = fmt.Errorf("skueue: server connection lost: %v: %w", err, ErrRemote)
				close(f.done)
			}
			r.c.failRemote()
			return
		}
		done, ok := v.(wire.CliDone)
		if !ok {
			continue // histories etc. use dedicated connections
		}
		r.mu.Lock()
		f := r.pending[done.Seq]
		delete(r.pending, done.Seq)
		r.mu.Unlock()
		if f == nil {
			continue
		}
		f.rounds = done.Rounds
		if done.Unreachable {
			// The cluster lost a member past the server's give-up timeout
			// and abandoned the operation rather than blocking forever
			// (fail-stop detection). ErrRemote lets callers dispatch on it.
			f.err = fmt.Errorf("skueue: %s: %w", done.Err, ErrRemote)
		} else if done.Err != "" {
			// Submission failed server-side (e.g. no live local process):
			// the operation never entered the queue, so it must surface as
			// an error, not as a ⊥ or a silent success.
			f.err = fmt.Errorf("skueue: server rejected operation: %s", done.Err)
		} else if f.kind == seqcheck.Dequeue {
			f.bottom = done.Bottom
			if !done.Bottom {
				val, derr := wire.DecodeValue(done.Value)
				if derr != nil {
					// The element is consumed either way; losing the value
					// silently would be worse than reporting it.
					f.err = derr
				} else {
					f.value = val
				}
			}
		}
		close(f.done)
	}
}

// submit sends one operation and registers its future.
func (r *remoteClient) submit(kind seqcheck.Kind, proc int, value any) (*Future, error) {
	if proc != AnyProcess {
		return nil, fmt.Errorf("process pinning is not available over the network: %w", ErrRemote)
	}
	var blob []byte
	if kind == seqcheck.Enqueue {
		var err error
		if blob, err = wire.EncodeValue(value); err != nil {
			return nil, err
		}
	}
	f := &Future{c: r.c, kind: kind, done: make(chan struct{})}
	r.mu.Lock()
	if r.readErr != nil {
		err := r.readErr
		r.mu.Unlock()
		return nil, fmt.Errorf("skueue: server connection failed: %w", err)
	}
	r.seq++
	seq := r.seq
	f.id = seq
	r.pending[seq] = f
	r.mu.Unlock()
	var req any
	if kind == seqcheck.Enqueue {
		req = wire.CliEnqueue{Seq: seq, Value: blob}
	} else {
		req = wire.CliDequeue{Seq: seq}
	}
	if err := r.conn.Write(req); err != nil {
		r.mu.Lock()
		delete(r.pending, seq)
		r.mu.Unlock()
		return nil, fmt.Errorf("skueue: submitting to server: %w", err)
	}
	return f, nil
}

// close shuts the connection; the reader then fails remaining futures.
func (r *remoteClient) close() { r.conn.Close() }

// freshBook asks the first reachable member for its current address book,
// so members that joined after this client opened are included. Falls
// back to the dial-time snapshot if nobody answers.
func (r *remoteClient) freshBook() []wire.MemberInfo {
	for _, m := range r.book {
		nc, err := net.DialTimeout("tcp", m.Addr, 5*time.Second)
		if err != nil {
			continue
		}
		conn := wire.NewConn(nc)
		if conn.Write(wire.Hello{Kind: "client"}) == nil {
			if v, err := conn.Read(); err == nil {
				if ack, ok := v.(wire.HelloAck); ok && len(ack.Book) > 0 {
					conn.Close()
					return ack.Book
				}
			}
		}
		conn.Close()
	}
	return r.book
}

// histories fetches the completion history of every cluster member over
// fresh connections and merges them. Completions are recorded where they
// finish — enqueues at the member storing the element — so no single
// member holds the full execution. The member list is re-fetched first:
// members admitted after this client opened hold completions too.
func (r *remoteClient) histories() (*seqcheck.History, error) {
	hist := &seqcheck.History{}
	for _, m := range r.freshBook() {
		nc, err := net.DialTimeout("tcp", m.Addr, 10*time.Second)
		if err != nil {
			return nil, fmt.Errorf("skueue: dialing member %d (%s): %w", m.Index, m.Addr, err)
		}
		conn := wire.NewConn(nc)
		err = func() error {
			defer conn.Close()
			if err := conn.Write(wire.Hello{Kind: "client"}); err != nil {
				return err
			}
			if _, err := conn.Read(); err != nil {
				return err
			}
			if err := conn.Write(wire.CliHistory{}); err != nil {
				return err
			}
			v, err := conn.Read()
			if err != nil {
				return err
			}
			resp, ok := v.(wire.CliHistoryResp)
			if !ok {
				return fmt.Errorf("member %d answered %T to history request", m.Index, v)
			}
			hist.Ops = append(hist.Ops, resp.Ops...)
			return nil
		}()
		if err != nil {
			return nil, err
		}
	}
	return hist, nil
}

// openRemote builds the WithRemote flavour of a Client: no cluster, no
// autopilot — just the connection and the shared Future machinery.
func openRemote(addr string) (*Client, error) {
	r, err := dialRemote(addr)
	if err != nil {
		return nil, err
	}
	c := &Client{
		mode:    r.mode,
		rem:     r,
		wake:    make(chan struct{}, 1),
		quit:    make(chan struct{}),
		stopped: make(chan struct{}),
	}
	close(c.stopped) // no autopilot to wait for on Close
	r.c = c
	go r.reader()
	return c, nil
}

// failRemote is called by the reader when the server connection dies: it
// closes the client so every blocked call returns ErrClosed.
func (c *Client) failRemote() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	close(c.quit)
	c.mu.Unlock()
}
