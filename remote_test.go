package skueue

// Regression tests for the remote-client failure paths. They speak the
// wire protocol directly through a minimal fake server, so they can drop
// the connection at exact protocol points no real cluster member would.

import (
	"errors"
	"net"
	"testing"
	"time"

	"skueue/internal/wire"
)

// TestRemoteFutureFailsOnDisconnect pins the in-flight-future contract of
// a dropped server connection: every pending future must complete — Done
// fires, Completed turns true — with a non-nil Err wrapping ErrRemote.
// The fake server completes the handshake, reads the submitted operation,
// and kills the connection without ever answering; before the fix the
// future hung forever (failRemote closed the client but never drained the
// pending map).
func TestRemoteFutureFailsOnDisconnect(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		nc, err := lis.Accept()
		if err != nil {
			return
		}
		conn := wire.NewConn(nc)
		defer conn.Close()
		if _, err := conn.Read(); err != nil { // Hello
			return
		}
		if err := conn.Write(wire.HelloAck{Mode: "queue"}); err != nil {
			return
		}
		conn.Read() // the CliEnqueue — swallow it, answer nothing, hang up
	}()

	c, err := Open(WithRemote(lis.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f, err := c.EnqueueAsync(AnyProcess, "lost")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	select {
	case <-f.Done():
	case <-time.After(15 * time.Second):
		t.Fatal("Done() never fired after the server connection dropped")
	}
	if !f.Completed() {
		t.Fatal("Completed() false after Done() fired")
	}
	werr := f.Err()
	if werr == nil {
		t.Fatal("Err() nil for an operation whose connection died: the outcome is indeterminate, not a success")
	}
	if !errors.Is(werr, ErrRemote) {
		t.Fatalf("Err() = %v, want it to wrap ErrRemote", werr)
	}
	// The split error taxonomy: a dropped connection is ErrUnreachable
	// (which wraps ErrRemote), and the drained future is indeterminate —
	// the operation may or may not have executed server-side. An
	// ephemeral client (no WithSession) gets this fail-fast drain rather
	// than a reconnect loop.
	if !errors.Is(werr, ErrUnreachable) {
		t.Fatalf("Err() = %v, want it to wrap ErrUnreachable", werr)
	}
	if !f.Indeterminate() {
		t.Fatal("Indeterminate() false for an operation drained by a connection loss")
	}
	// The client is failed: further submissions report the dead
	// connection instead of queueing into the void.
	if _, err := c.EnqueueAsync(AnyProcess, "after"); err == nil {
		t.Fatal("submitting on a failed remote client succeeded")
	}
}
