// Package skueue is a from-scratch Go implementation of SKUEUE, the
// scalable, sequentially consistent distributed queue of Feldmann,
// Scheideler and Setzer (IPDPS 2018), together with its distributed stack
// variant.
//
// The protocol runs on a simulated network of processes, each emulating
// three virtual nodes of a linearized De Bruijn overlay. Queue operations
// are aggregated into batches over an implicit aggregation tree, assigned
// positions by the leftmost node (the anchor), and stored in a DHT via
// consistent hashing; the result is sequential consistency with O(log n)
// rounds per operation even under massive request rates, plus JOIN and
// LEAVE support for dynamic membership.
//
// The package is a facade over the full protocol implementation in
// internal/: construct a System, submit operations from any process,
// advance simulated time, and collect results. Every execution can be
// verified against the paper's Definition 1 with Check.
//
//	sys, _ := skueue.New(skueue.Config{Processes: 8, Seed: 1})
//	h := sys.Enqueue(0, "job-1")
//	sys.Drain(10_000)
//	d := sys.Dequeue(3)
//	sys.Drain(10_000)
//	fmt.Println(d.Value()) // job-1
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// reproduction of the paper's evaluation.
package skueue

import (
	"errors"
	"fmt"

	"skueue/internal/batch"
	"skueue/internal/core"
	"skueue/internal/dht"
	"skueue/internal/seqcheck"
)

// Mode selects the data-structure semantics.
type Mode int

// Available semantics: FIFO queue (paper §III) and LIFO stack (§VI).
const (
	Queue Mode = iota
	Stack
)

// Config configures a System.
type Config struct {
	// Processes is the initial number of member processes (>= 1).
	Processes int
	// Seed makes the whole run reproducible.
	Seed int64
	// Mode selects queue or stack semantics.
	Mode Mode
	// Async runs the fully asynchronous message-passing model instead of
	// the synchronous round model.
	Async bool
	// Unsafe ablations (see DESIGN.md §6); leave false in normal use.
	DisableStage4Wait     bool
	DisableLocalCombining bool
}

// Handle tracks one submitted operation. Operations complete as the
// simulation advances; query the handle afterwards.
type Handle struct {
	id     uint64
	kind   seqcheck.Kind
	done   bool
	bottom bool
	value  any
	rounds int64
}

// Done reports whether the operation completed.
func (h *Handle) Done() bool { return h.done }

// Empty reports whether a dequeue/pop returned ⊥ (empty structure).
func (h *Handle) Empty() bool { return h.done && h.bottom }

// Value returns the dequeued value (nil for ⊥, enqueues, or when not done).
func (h *Handle) Value() any { return h.value }

// Rounds returns the request latency in simulated rounds.
func (h *Handle) Rounds() int64 { return h.rounds }

// System is a running Skueue deployment.
type System struct {
	cl      *core.Cluster
	mode    Mode
	handles map[uint64]*Handle
	values  map[dht.Element]any
	pending map[uint64]any // enqueue values awaiting element binding
	// early holds completions that fired synchronously inside the inject
	// call (locally combined stack pairs), before the handle existed.
	early map[uint64]seqcheck.Completion
}

// New builds a system with all configured processes as initial members.
func New(cfg Config) (*System, error) {
	if cfg.Processes < 1 {
		return nil, errors.New("skueue: Processes must be at least 1")
	}
	mode := batch.Queue
	if cfg.Mode == Stack {
		mode = batch.Stack
	}
	cl, err := core.New(core.Config{
		Processes:             cfg.Processes,
		Seed:                  cfg.Seed,
		Mode:                  mode,
		Async:                 cfg.Async,
		DisableStage4Wait:     cfg.DisableStage4Wait,
		DisableLocalCombining: cfg.DisableLocalCombining,
	})
	if err != nil {
		return nil, err
	}
	s := &System{
		cl:      cl,
		mode:    cfg.Mode,
		handles: make(map[uint64]*Handle),
		values:  make(map[dht.Element]any),
		pending: make(map[uint64]any),
		early:   make(map[uint64]seqcheck.Completion),
	}
	cl.SetOnComplete(s.onComplete)
	return s, nil
}

func (s *System) onComplete(c seqcheck.Completion) {
	h := s.handles[c.ReqID]
	if h == nil {
		s.early[c.ReqID] = c
		return
	}
	h.done = true
	h.rounds = c.Done - c.Born
	if c.Kind == seqcheck.Enqueue {
		if v, ok := s.pending[c.ReqID]; ok {
			s.values[c.Elem] = v
			delete(s.pending, c.ReqID)
		}
		return
	}
	h.bottom = c.Bottom
	if !c.Bottom {
		h.value = s.values[c.Elem]
	}
}

func (s *System) checkProc(proc int) {
	if proc < 0 || proc >= len(s.cl.Processes()) {
		panic(fmt.Sprintf("skueue: no such process %d", proc))
	}
	p := s.cl.Processes()[proc]
	if p.Left {
		panic(fmt.Sprintf("skueue: process %d has left the system", proc))
	}
}

// Enqueue submits an ENQUEUE(value) at the given process. Stack mode: this
// is PUSH.
func (s *System) Enqueue(proc int, value any) *Handle {
	s.checkProc(proc)
	id := s.cl.Enqueue(s.cl.Client(proc))
	h := &Handle{id: id, kind: seqcheck.Enqueue}
	s.handles[id] = h
	s.pending[id] = value
	s.resolveEarly(id)
	return h
}

// resolveEarly applies a completion that raced the handle registration.
func (s *System) resolveEarly(id uint64) {
	if c, ok := s.early[id]; ok {
		delete(s.early, id)
		s.onComplete(c)
	}
}

// Push is the stack-flavoured alias of Enqueue.
func (s *System) Push(proc int, value any) *Handle { return s.Enqueue(proc, value) }

// Dequeue submits a DEQUEUE at the given process. Stack mode: this is POP.
func (s *System) Dequeue(proc int) *Handle {
	s.checkProc(proc)
	id := s.cl.Dequeue(s.cl.Client(proc))
	h := &Handle{id: id, kind: seqcheck.Dequeue}
	s.handles[id] = h
	s.resolveEarly(id)
	return h
}

// Pop is the stack-flavoured alias of Dequeue.
func (s *System) Pop(proc int) *Handle { return s.Dequeue(proc) }

// Join adds a fresh process to the system through the given contact
// process (§IV-A) and returns its index. The process becomes usable once
// the next update phase integrates it; see Settle.
func (s *System) Join(contact int) int {
	s.checkProc(contact)
	return s.cl.JoinProcess(contact)
}

// Leave withdraws a process from the system (§IV-B). Its data migrates to
// the remaining members; see Settle.
func (s *System) Leave(proc int) {
	s.checkProc(proc)
	s.cl.LeaveProcess(proc)
}

// Step advances the simulation by one round (one event when Async).
func (s *System) Step() { s.cl.Step() }

// Run advances the simulation by n rounds (time units when Async).
func (s *System) Run(n int64) { s.cl.Run(n) }

// Drain runs until every submitted operation completed, up to maxTime.
func (s *System) Drain(maxTime int64) bool { return s.cl.Drain(maxTime) }

// Settle runs until all pending joins and leaves finished integrating and
// the overlay is fully consistent, up to maxTime.
func (s *System) Settle(maxTime int64) bool {
	return s.cl.Engine().RunUntil(func() bool {
		return s.cl.ChurnQuiescent() && s.cl.VerifyTopology() == nil
	}, maxTime)
}

// Check verifies the entire execution so far against the paper's
// sequential-consistency definition (Definition 1).
func (s *System) Check() error { return s.cl.CheckConsistency() }

// Stats summarizes completed operations.
func (s *System) Stats() seqcheck.Stats { return seqcheck.Summarize(s.cl.History()) }

// Metrics exposes protocol-level counters (batch sizes, waves, routing).
func (s *System) Metrics() core.Metrics { return s.cl.Metrics() }

// NumProcesses returns the number of processes ever part of the system
// (including departed ones; their indices stay valid for bookkeeping).
func (s *System) NumProcesses() int { return len(s.cl.Processes()) }

// Stored returns the number of elements currently held in the DHT.
func (s *System) Stored() int { return s.cl.TotalStored() }

// Now returns the current simulated time.
func (s *System) Now() int64 { return s.cl.Engine().Now() }

// Cluster exposes the underlying protocol cluster for experiments and
// advanced inspection.
func (s *System) Cluster() *core.Cluster { return s.cl }
