// Package skueue is a from-scratch Go implementation of SKUEUE, the
// scalable, sequentially consistent distributed queue of Feldmann,
// Scheideler and Setzer (IPDPS 2018), together with its distributed stack
// variant.
//
// Processes each emulate three virtual nodes of a linearized De Bruijn
// overlay. Queue operations are aggregated into batches over an implicit
// aggregation tree, assigned positions by the leftmost node (the anchor),
// and stored in a DHT via consistent hashing; the result is sequential
// consistency with O(log n) rounds per operation even under massive
// request rates, plus JOIN and LEAVE support for dynamic membership.
//
// The package is a concurrency-safe client layer over the full protocol
// implementation in internal/: open a Client, issue blocking operations
// from any number of goroutines, and verify the execution against the
// paper's Definition 1 with Check. The protocol runs over a pluggable
// transport (internal/transport) with two backends, selected at Open:
//
//   - Simulated (default): the whole deployment lives in-process on the
//     deterministic discrete-event engine of internal/sim. A background
//     autopilot advances simulated time whenever work is pending, so the
//     blocking calls behave like a real queue client's:
//
//     c, _ := skueue.Open(skueue.WithProcesses(8), skueue.WithSeed(1))
//     defer c.Close()
//     ctx := context.Background()
//     _ = c.Enqueue(ctx, "job-1")
//     v, ok, _ := c.Dequeue(ctx)
//     fmt.Println(v, ok) // job-1 true
//
//   - Networked (WithRemote): the cluster is a set of skueue-server
//     processes exchanging protocol messages over TCP
//     (internal/transport/tcp, cmd/skueue-server), and the client
//     round-trips operations to one of them:
//
//     c, _ := skueue.Open(skueue.WithRemote("127.0.0.1:7001"))
//     defer c.Close()
//     _ = c.Enqueue(ctx, "job-1")
//
// Deterministic single-goroutine control — what the experiment harness and
// the CLIs use — is preserved behind WithManualClock: the async
// submissions (EnqueueAsync, DequeueAsync) return a Future, and Step, Run,
// Drain and Settle advance the clock explicitly.
//
// Errors are typed sentinels (ErrNoSuchProcess, ErrProcessLeft,
// ErrTimeout, ErrClosed, ErrUnsupported, ErrUnreachable, ...); match
// them with errors.Is.
//
// See README.md for quickstarts (including a networked cluster),
// DESIGN.md for the architecture and EXPERIMENTS.md for the reproduction
// of the paper's evaluation.
package skueue
