package skueue

import (
	"context"
	"errors"
	"testing"
)

// mustOpen opens a manual-clock client or fails the test.
func mustOpen(t *testing.T, opts ...Option) *Client {
	t.Helper()
	c, err := Open(append([]Option{WithManualClock()}, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func mustDrain(t *testing.T, c *Client, maxTime int64) {
	t.Helper()
	ok, err := c.Drain(maxTime)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("operations did not drain")
	}
}

func mustSettle(t *testing.T, c *Client, maxTime int64) {
	t.Helper()
	ok, err := c.Settle(maxTime)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("churn did not settle")
	}
}

func TestQuickstartFlow(t *testing.T) {
	c := mustOpen(t, WithProcesses(4), WithSeed(1))
	e1, err := c.EnqueueAsync(0, "a")
	if err != nil {
		t.Fatal(err)
	}
	e2, err := c.EnqueueAsync(1, "b")
	if err != nil {
		t.Fatal(err)
	}
	mustDrain(t, c, 10000)
	if !e1.Completed() || !e2.Completed() {
		t.Fatal("futures not completed after drain")
	}
	d1, _ := c.DequeueAsync(2)
	d2, _ := c.DequeueAsync(2)
	mustDrain(t, c, 10000)
	// Both elements are gone now, so a later dequeue must come up empty.
	d3, _ := c.DequeueAsync(3)
	mustDrain(t, c, 10000)
	got := []any{d1.Value(), d2.Value()}
	// d1 and d2 are by the same process: FIFO order between them.
	if got[0] != "a" && got[0] != "b" {
		t.Fatalf("unexpected first value %v", got[0])
	}
	if got[1] == got[0] {
		t.Fatalf("same element delivered twice")
	}
	if !d3.Empty() {
		t.Fatalf("third dequeue should be empty, got %v", d3.Value())
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestStackMode(t *testing.T) {
	c := mustOpen(t, WithProcesses(2), WithSeed(2), WithMode(Stack))
	if _, err := c.PushAsync(0, 1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.PushAsync(0, 2); err != nil {
		t.Fatal(err)
	}
	mustDrain(t, c, 10000)
	p, err := c.PopAsync(1)
	if err != nil {
		t.Fatal(err)
	}
	mustDrain(t, c, 10000)
	if p.Value() != 2 {
		t.Fatalf("LIFO: pop got %v, want 2", p.Value())
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestFutureLifecycle(t *testing.T) {
	c := mustOpen(t, WithProcesses(2), WithSeed(3))
	f, err := c.EnqueueAsync(0, "x")
	if err != nil {
		t.Fatal(err)
	}
	if f.Completed() || f.Empty() || f.Value() != nil || f.Rounds() != 0 {
		t.Fatalf("fresh future should be pending")
	}
	select {
	case <-f.Done():
		t.Fatal("Done closed before completion")
	default:
	}
	mustDrain(t, c, 10000)
	if !f.Completed() || f.Rounds() <= 0 {
		t.Fatalf("future not resolved: completed=%v rounds=%d", f.Completed(), f.Rounds())
	}
	select {
	case <-f.Done():
	default:
		t.Fatal("Done not closed after completion")
	}
	// Wait on a completed future returns immediately, even with a dead
	// context.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := f.Wait(ctx); err != nil {
		t.Fatalf("Wait on completed future: %v", err)
	}
}

func TestJoinLeaveViaClient(t *testing.T) {
	c := mustOpen(t, WithProcesses(3), WithSeed(4))
	admin := c.Admin()
	if err := c.Run(5); err != nil {
		t.Fatal(err)
	}
	p, err := admin.Join(0)
	if err != nil {
		t.Fatal(err)
	}
	mustSettle(t, c, 30000)
	if _, err := c.EnqueueAsync(p, "from-joiner"); err != nil {
		t.Fatal(err)
	}
	mustDrain(t, c, 10000)
	if err := admin.Leave(1); err != nil {
		t.Fatal(err)
	}
	mustSettle(t, c, 60000)
	d, err := c.DequeueAsync(0)
	if err != nil {
		t.Fatal(err)
	}
	mustDrain(t, c, 30000)
	if d.Value() != "from-joiner" {
		t.Fatalf("element lost across churn: %v", d.Value())
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestValuesSurviveDHTTravel(t *testing.T) {
	c := mustOpen(t, WithProcesses(6), WithSeed(5))
	want := map[any]bool{}
	for i := 0; i < 20; i++ {
		v := i * 100
		if _, err := c.EnqueueAsync(i%6, v); err != nil {
			t.Fatal(err)
		}
		want[v] = true
	}
	mustDrain(t, c, 20000)
	if c.Stored() != 20 {
		t.Fatalf("stored %d, want 20", c.Stored())
	}
	var futures []*Future
	for i := 0; i < 20; i++ {
		f, err := c.DequeueAsync(i % 6)
		if err != nil {
			t.Fatal(err)
		}
		futures = append(futures, f)
	}
	mustDrain(t, c, 20000)
	for _, f := range futures {
		if f.Empty() {
			t.Fatalf("lost element")
		}
		if !want[f.Value()] {
			t.Fatalf("unknown or duplicate value %v", f.Value())
		}
		delete(want, f.Value())
	}
}

func TestOpenValidation(t *testing.T) {
	if _, err := Open(WithProcesses(0)); err == nil {
		t.Fatal("zero processes should fail")
	}
	if _, err := Open(WithAutopilotQuantum(0)); err == nil {
		t.Fatal("zero quantum should fail")
	}
}

func TestTypedProcessErrors(t *testing.T) {
	c := mustOpen(t, WithProcesses(2), WithSeed(6))
	if _, err := c.EnqueueAsync(9, nil); !errors.Is(err, ErrNoSuchProcess) {
		t.Fatalf("out-of-range process: got %v, want ErrNoSuchProcess", err)
	}
	// -1 is AnyProcess; any other negative index is invalid.
	if _, err := c.DequeueAsync(-2); !errors.Is(err, ErrNoSuchProcess) {
		t.Fatalf("negative process: got %v, want ErrNoSuchProcess", err)
	}
	if _, err := c.Admin().Join(7); !errors.Is(err, ErrNoSuchProcess) {
		t.Fatalf("bad contact: got %v, want ErrNoSuchProcess", err)
	}
	if err := c.Admin().Leave(1); err != nil {
		t.Fatal(err)
	}
	mustSettle(t, c, 60000)
	if _, err := c.EnqueueAsync(1, "x"); !errors.Is(err, ErrProcessLeft) {
		t.Fatalf("departed process: got %v, want ErrProcessLeft", err)
	}
	if err := c.Admin().Leave(1); !errors.Is(err, ErrProcessLeft) {
		t.Fatalf("double leave: got %v, want ErrProcessLeft", err)
	}
}

func TestLeaveWhileJoining(t *testing.T) {
	c := mustOpen(t, WithProcesses(3), WithSeed(14))
	p, err := c.Admin().Join(0)
	if err != nil {
		t.Fatal(err)
	}
	// Without settling, the new process is still integrating.
	if err := c.Admin().Leave(p); !errors.Is(err, ErrStillJoining) {
		t.Fatalf("leave while joining: got %v, want ErrStillJoining", err)
	}
	mustSettle(t, c, 60000)
	if err := c.Admin().Leave(p); err != nil {
		t.Fatalf("leave after settle: %v", err)
	}
	mustSettle(t, c, 60000)
}

func TestAsyncSchedulerClient(t *testing.T) {
	c := mustOpen(t, WithProcesses(3), WithSeed(7), WithAsync())
	if _, err := c.EnqueueAsync(0, "v"); err != nil {
		t.Fatal(err)
	}
	mustDrain(t, c, 50000)
	d, err := c.DequeueAsync(1)
	if err != nil {
		t.Fatal(err)
	}
	mustDrain(t, c, 50000)
	if d.Value() != "v" {
		t.Fatalf("got %v", d.Value())
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAndMetrics(t *testing.T) {
	c := mustOpen(t, WithProcesses(3), WithSeed(8))
	for i := 0; i < 10; i++ {
		if _, err := c.EnqueueAsync(i%3, i); err != nil {
			t.Fatal(err)
		}
	}
	mustDrain(t, c, 20000)
	st := c.Stats()
	if st.Total != 10 || st.Enqueues != 10 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if c.Metrics().WavesAssigned == 0 {
		t.Fatalf("no waves recorded")
	}
	if c.Now() == 0 {
		t.Fatalf("time did not advance")
	}
	if c.NumProcesses() != 3 {
		t.Fatalf("process count wrong")
	}
	if c.Mode() != Queue {
		t.Fatalf("mode wrong")
	}
}

// TestEarlyCompletionInsideInject is the regression test for the
// resolveEarly race: a locally combined stack pair completes synchronously
// inside the DequeueAsync (pop) inject call, before the pop's future can
// be registered. The client must stash the completion, apply it during
// registration, and leave no orphaned entry behind.
func TestEarlyCompletionInsideInject(t *testing.T) {
	c := mustOpen(t, WithProcesses(2), WithSeed(9), WithMode(Stack))
	before := c.Metrics().CombinedOps
	push, err := c.PushAsync(0, "ephemeral")
	if err != nil {
		t.Fatal(err)
	}
	pop, err := c.PopAsync(0)
	if err != nil {
		t.Fatal(err)
	}
	// Local combining (§VI) answers the pair on the spot, with zero
	// protocol rounds — both futures must already be resolved.
	if !push.Completed() || !pop.Completed() {
		t.Fatalf("combined pair should complete inside the inject call (push=%v pop=%v)",
			push.Completed(), pop.Completed())
	}
	if pop.Empty() {
		t.Fatal("combined pop reported ⊥")
	}
	if pop.Value() != "ephemeral" {
		t.Fatalf("combined pop value = %v, want ephemeral", pop.Value())
	}
	if got := c.Metrics().CombinedOps - before; got != 2 {
		t.Fatalf("combined ops delta = %d, want 2", got)
	}
	c.mu.Lock()
	earlyLeft, futuresLeft := len(c.early), len(c.futures)
	c.mu.Unlock()
	if earlyLeft != 0 {
		t.Fatalf("%d early completions left unresolved", earlyLeft)
	}
	if futuresLeft != 0 {
		t.Fatalf("%d futures left registered after completion", futuresLeft)
	}
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestEarlyCompletionRepeated exercises the early-completion path many
// times, interleaved with network-travelling operations, to make sure the
// stash never misattributes a completion.
func TestEarlyCompletionRepeated(t *testing.T) {
	c := mustOpen(t, WithProcesses(3), WithSeed(10), WithMode(Stack))
	for i := 0; i < 50; i++ {
		proc := i % 3
		push, err := c.PushAsync(proc, i)
		if err != nil {
			t.Fatal(err)
		}
		pop, err := c.PopAsync(proc)
		if err != nil {
			t.Fatal(err)
		}
		if !push.Completed() || !pop.Completed() {
			t.Fatalf("iteration %d: combined pair did not complete synchronously", i)
		}
		if pop.Value() != i {
			t.Fatalf("iteration %d: pop value %v", i, pop.Value())
		}
		if i%5 == 0 { // let some uncombined traffic travel the network too
			if _, err := c.PushAsync((proc+1)%3, i*1000); err != nil {
				t.Fatal(err)
			}
			if err := c.Run(3); err != nil {
				t.Fatal(err)
			}
		}
	}
	mustDrain(t, c, 50000)
	if err := c.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestManualClockGating(t *testing.T) {
	c, err := Open(WithProcesses(2), WithSeed(11)) // autopilot mode
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Step(); !errors.Is(err, ErrAutoClock) {
		t.Fatalf("Step on autopilot: got %v, want ErrAutoClock", err)
	}
	if err := c.Run(5); !errors.Is(err, ErrAutoClock) {
		t.Fatalf("Run on autopilot: got %v, want ErrAutoClock", err)
	}
	if _, err := c.Drain(100); !errors.Is(err, ErrAutoClock) {
		t.Fatalf("Drain on autopilot: got %v, want ErrAutoClock", err)
	}
	if _, err := c.Settle(100); !errors.Is(err, ErrAutoClock) {
		t.Fatalf("Settle on autopilot: got %v, want ErrAutoClock", err)
	}
}

func TestClosedClient(t *testing.T) {
	c, err := Open(WithProcesses(2), WithSeed(12))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: got %v, want ErrClosed", err)
	}
	ctx := context.Background()
	if err := c.Enqueue(ctx, "x"); !errors.Is(err, ErrClosed) {
		t.Fatalf("enqueue after close: got %v, want ErrClosed", err)
	}
	if _, _, err := c.Dequeue(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("dequeue after close: got %v, want ErrClosed", err)
	}
	if _, err := c.Admin().Join(0); !errors.Is(err, ErrClosed) {
		t.Fatalf("join after close: got %v, want ErrClosed", err)
	}
	if err := c.Admin().Settle(ctx); !errors.Is(err, ErrClosed) {
		t.Fatalf("settle after close: got %v, want ErrClosed", err)
	}
}
