package skueue

import (
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	sys, err := New(Config{Processes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	e1 := sys.Enqueue(0, "a")
	e2 := sys.Enqueue(1, "b")
	if !sys.Drain(10000) {
		t.Fatal("enqueues did not drain")
	}
	if !e1.Done() || !e2.Done() {
		t.Fatal("handles not done after drain")
	}
	d1 := sys.Dequeue(2)
	d2 := sys.Dequeue(2)
	if !sys.Drain(10000) {
		t.Fatal("dequeues did not drain")
	}
	// Both elements are gone now, so a later dequeue must come up empty.
	d3 := sys.Dequeue(3)
	if !sys.Drain(10000) {
		t.Fatal("third dequeue did not drain")
	}
	got := []any{d1.Value(), d2.Value()}
	// d1 and d2 are by the same process: FIFO order between them.
	if got[0] != "a" && got[0] != "b" {
		t.Fatalf("unexpected first value %v", got[0])
	}
	if got[1] == got[0] {
		t.Fatalf("same element delivered twice")
	}
	if !d3.Empty() {
		t.Fatalf("third dequeue should be empty, got %v", d3.Value())
	}
	if err := sys.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestStackMode(t *testing.T) {
	sys, err := New(Config{Processes: 2, Seed: 2, Mode: Stack})
	if err != nil {
		t.Fatal(err)
	}
	sys.Push(0, 1)
	sys.Push(0, 2)
	if !sys.Drain(10000) {
		t.Fatal("pushes did not drain")
	}
	p := sys.Pop(1)
	if !sys.Drain(10000) {
		t.Fatal("pop did not drain")
	}
	if p.Value() != 2 {
		t.Fatalf("LIFO: pop got %v, want 2", p.Value())
	}
	if err := sys.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestHandleLifecycle(t *testing.T) {
	sys, _ := New(Config{Processes: 2, Seed: 3})
	h := sys.Enqueue(0, "x")
	if h.Done() || h.Empty() || h.Value() != nil {
		t.Fatalf("fresh handle should be pending")
	}
	sys.Drain(10000)
	if !h.Done() || h.Rounds() <= 0 {
		t.Fatalf("handle not resolved: done=%v rounds=%d", h.Done(), h.Rounds())
	}
}

func TestJoinLeaveViaFacade(t *testing.T) {
	sys, _ := New(Config{Processes: 3, Seed: 4})
	sys.Run(5)
	p := sys.Join(0)
	if !sys.Settle(30000) {
		t.Fatal("join did not settle")
	}
	sys.Enqueue(p, "from-joiner")
	if !sys.Drain(10000) {
		t.Fatal("joiner op did not drain")
	}
	sys.Leave(1)
	if !sys.Settle(60000) {
		t.Fatal("leave did not settle")
	}
	d := sys.Dequeue(0)
	if !sys.Drain(30000) {
		t.Fatal("post-leave op did not drain")
	}
	if d.Value() != "from-joiner" {
		t.Fatalf("element lost across churn: %v", d.Value())
	}
	if err := sys.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestValuesSurviveDHTTravel(t *testing.T) {
	sys, _ := New(Config{Processes: 6, Seed: 5})
	want := map[any]bool{}
	for i := 0; i < 20; i++ {
		v := i * 100
		sys.Enqueue(i%6, v)
		want[v] = true
	}
	sys.Drain(20000)
	if sys.Stored() != 20 {
		t.Fatalf("stored %d, want 20", sys.Stored())
	}
	var handles []*Handle
	for i := 0; i < 20; i++ {
		handles = append(handles, sys.Dequeue(i%6))
	}
	sys.Drain(20000)
	for _, h := range handles {
		if h.Empty() {
			t.Fatalf("lost element")
		}
		if !want[h.Value()] {
			t.Fatalf("unknown or duplicate value %v", h.Value())
		}
		delete(want, h.Value())
	}
}

func TestInvalidConfig(t *testing.T) {
	if _, err := New(Config{Processes: 0}); err == nil {
		t.Fatal("zero processes should fail")
	}
}

func TestPanicsOnBadProcess(t *testing.T) {
	sys, _ := New(Config{Processes: 2, Seed: 6})
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range process")
		}
	}()
	sys.Enqueue(9, nil)
}

func TestAsyncFacade(t *testing.T) {
	sys, _ := New(Config{Processes: 3, Seed: 7, Async: true})
	sys.Enqueue(0, "v")
	if !sys.Drain(50000) {
		t.Fatal("async enqueue did not drain")
	}
	d := sys.Dequeue(1)
	if !sys.Drain(50000) {
		t.Fatal("async dequeue did not drain")
	}
	if d.Value() != "v" {
		t.Fatalf("got %v", d.Value())
	}
	if err := sys.Check(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsAndMetrics(t *testing.T) {
	sys, _ := New(Config{Processes: 3, Seed: 8})
	for i := 0; i < 10; i++ {
		sys.Enqueue(i%3, i)
	}
	sys.Drain(20000)
	st := sys.Stats()
	if st.Total != 10 || st.Enqueues != 10 {
		t.Fatalf("stats wrong: %+v", st)
	}
	if sys.Metrics().WavesAssigned == 0 {
		t.Fatalf("no waves recorded")
	}
	if sys.Now() == 0 {
		t.Fatalf("time did not advance")
	}
	if sys.NumProcesses() != 3 {
		t.Fatalf("process count wrong")
	}
}
