package skueue

// ErrWrongMode end-to-end: an operation whose flavour does not match the
// cluster's mode fails with the typed sentinel at every layer — the
// embedded client, the remote client's local check (mode learned from
// the HelloAck), the server's own policing of raw frames, and a remote
// future carrying the server's CliDone.WrongMode verdict.

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"skueue/internal/server"
	"skueue/internal/wire"
)

func TestWrongModeEmbedded(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	heap, err := Open(WithProcesses(2), WithHeap(3))
	if err != nil {
		t.Fatal(err)
	}
	defer heap.Close()
	if err := heap.Enqueue(ctx, "x"); !errors.Is(err, ErrWrongMode) {
		t.Fatalf("plain Enqueue on heap client: %v, want ErrWrongMode", err)
	}
	if _, _, err := heap.Dequeue(ctx); !errors.Is(err, ErrWrongMode) {
		t.Fatalf("plain Dequeue on heap client: %v, want ErrWrongMode", err)
	}
	if _, err := heap.EnqueueAsync(AnyProcess, "x"); !errors.Is(err, ErrWrongMode) {
		t.Fatalf("EnqueueAsync on heap client: %v, want ErrWrongMode", err)
	}
	// The matching flavour works, and out-of-range levels are a distinct
	// (non-wrong-mode) error.
	if err := heap.EnqueuePri(ctx, 2, "ok"); err != nil {
		t.Fatalf("EnqueuePri on heap client: %v", err)
	}
	if err := heap.EnqueuePri(ctx, 3, "over"); err == nil || errors.Is(err, ErrWrongMode) {
		t.Fatalf("EnqueuePri level 3 of 3: %v, want a range error", err)
	}

	queue, err := Open(WithProcesses(2))
	if err != nil {
		t.Fatal(err)
	}
	defer queue.Close()
	if err := queue.EnqueuePri(ctx, 0, "x"); !errors.Is(err, ErrWrongMode) {
		t.Fatalf("EnqueuePri on queue client: %v, want ErrWrongMode", err)
	}
	if _, _, err := queue.DequeueMin(ctx); !errors.Is(err, ErrWrongMode) {
		t.Fatalf("DequeueMin on queue client: %v, want ErrWrongMode", err)
	}
	if _, err := queue.DequeueMinAsync(AnyProcess); !errors.Is(err, ErrWrongMode) {
		t.Fatalf("DequeueMinAsync on queue client: %v, want ErrWrongMode", err)
	}
}

// startSingleMember boots a one-member loopback server in the given mode.
func startSingleMember(t *testing.T, mode string, levels int) *server.Server {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s, err := server.New(server.Config{
		Listener: l, Seed: 5, Index: 0, Members: []string{l.Addr().String()},
		Mode: mode, HeapLevels: levels,
		Tick: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// TestWrongModeRemote: the remote client learns the cluster mode from
// the HelloAck and polices the flavour locally, with the same sentinel.
func TestWrongModeRemote(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	qs := startSingleMember(t, "queue", 0)
	qc, err := Open(WithRemote(qs.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer qc.Close()
	if err := qc.EnqueuePri(ctx, 0, "x"); !errors.Is(err, ErrWrongMode) {
		t.Fatalf("EnqueuePri via queue cluster: %v, want ErrWrongMode", err)
	}
	if _, _, err := qc.DequeueMin(ctx); !errors.Is(err, ErrWrongMode) {
		t.Fatalf("DequeueMin via queue cluster: %v, want ErrWrongMode", err)
	}

	hs := startSingleMember(t, "heap", 3)
	hc, err := Open(WithRemote(hs.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Close()
	if got := hc.HeapLevels(); got != 3 {
		t.Fatalf("HeapLevels via remote heap cluster = %d, want 3", got)
	}
	if err := hc.Enqueue(ctx, "x"); !errors.Is(err, ErrWrongMode) {
		t.Fatalf("plain Enqueue via heap cluster: %v, want ErrWrongMode", err)
	}
	if err := hc.EnqueuePri(ctx, 1, "ok"); err != nil {
		t.Fatalf("EnqueuePri via heap cluster: %v", err)
	}
	if v, ok, err := hc.DequeueMin(ctx); err != nil || !ok || v != "ok" {
		t.Fatalf("DequeueMin via heap cluster: (%v, %v, %v), want (ok, true, nil)", v, ok, err)
	}
}

// TestWrongModeServerPolicing speaks raw wire frames, bypassing the
// client's local check: the member itself must reject the mismatched
// flavour with CliDone.WrongMode (deterministically — the verdict
// depends only on the cluster's immutable mode, so it needs no
// journaled identity).
func TestWrongModeServerPolicing(t *testing.T) {
	cases := []struct {
		name   string
		mode   string
		levels int
		op     any
	}{
		{"priority-op-vs-queue", "queue", 0, wire.CliEnqueue{Seq: 1, PriOp: true}},
		{"plain-op-vs-heap", "heap", 2, wire.CliDequeue{Seq: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := startSingleMember(t, tc.mode, tc.levels)
			nc, err := net.Dial("tcp", s.Addr())
			if err != nil {
				t.Fatal(err)
			}
			defer nc.Close()
			nc.SetDeadline(time.Now().Add(15 * time.Second))
			conn := wire.NewConn(nc)
			if err := conn.Write(wire.Hello{Kind: "client"}); err != nil {
				t.Fatal(err)
			}
			ack, err := conn.Read()
			if err != nil {
				t.Fatal(err)
			}
			if ha, ok := ack.(wire.HelloAck); !ok || ha.Mode != tc.mode {
				t.Fatalf("handshake answer %#v, want HelloAck with mode %q", ack, tc.mode)
			}
			if err := conn.Write(tc.op); err != nil {
				t.Fatal(err)
			}
			reply, err := conn.Read()
			if err != nil {
				t.Fatal(err)
			}
			done, ok := reply.(wire.CliDone)
			if !ok {
				t.Fatalf("reply %#v, want CliDone", reply)
			}
			if !done.WrongMode || done.Seq != 1 {
				t.Fatalf("reply %+v, want Seq 1 with WrongMode set", done)
			}
		})
	}
}

// TestWrongModeSurfacedThroughFuture: a CliDone carrying the server's
// WrongMode verdict fails the matching future with the typed sentinel
// (not the generic remote-failure error, and not indeterminate — the
// operation definitively never executed).
func TestWrongModeSurfacedThroughFuture(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	go func() {
		nc, err := lis.Accept()
		if err != nil {
			return
		}
		conn := wire.NewConn(nc)
		defer conn.Close()
		if _, err := conn.Read(); err != nil { // Hello
			return
		}
		if err := conn.Write(wire.HelloAck{Mode: "queue"}); err != nil {
			return
		}
		for {
			m, err := conn.Read()
			if err != nil {
				return
			}
			if enq, ok := m.(wire.CliEnqueue); ok {
				conn.Write(wire.CliDone{Seq: enq.Seq, WrongMode: true,
					Err: `operation flavour does not match cluster mode "queue"`})
			}
		}
	}()

	c, err := Open(WithRemote(lis.Addr().String()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	f, err := c.EnqueueAsync(AnyProcess, "rejected")
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := f.Wait(ctx); err == nil {
		t.Fatal("future succeeded for a WrongMode rejection")
	}
	if werr := f.Err(); !errors.Is(werr, ErrWrongMode) {
		t.Fatalf("future error %v, want it to wrap ErrWrongMode", werr)
	}
	if f.Indeterminate() {
		t.Fatal("WrongMode rejection marked indeterminate; the operation definitively never executed")
	}
}
